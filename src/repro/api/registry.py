"""String-keyed plugin registries: name -> factory, one mechanism.

Every policy choice the pipeline offers -- where series are stored,
where shards execute, which consumers watch the window stream, how
drift is detected, what load is generated, which application model is
driven -- used to be an ``if/elif`` ladder somewhere (``cli.py``,
``engine.py``, ``executor.py``).  This module replaces those ladders
with registries: a :class:`Registry` maps a short string key to a
factory callable, the built-in implementations are pre-registered, and
third-party extensions plug in with one call::

    from repro.api import register_backend

    @register_backend("redis")
    def open_redis(path, **options):
        return RedisBackend(path, **options)

A registered name immediately works everywhere the key is accepted --
``RunSpec`` fields, ``--store``/``--executor``/``--backend`` CLI
flags, ``StreamingConfig.executor`` -- because all of them resolve
through the same registry.

This module deliberately imports nothing from the rest of the package
at module scope (built-in factories import lazily inside their
bodies), so any layer -- including ``repro.core.config`` validation --
may consult a registry without creating an import cycle.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

Factory = Callable[..., Any]


class Registry:
    """One named factory table (e.g. all storage backends)."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: dict[str, Factory] = {}

    # -- registration ---------------------------------------------------

    def register(self, name: str, factory: Factory | None = None,
                 *, replace: bool = False
                 ) -> Factory | Callable[[Factory], Factory]:
        """Register ``factory`` under ``name``.

        Usable directly (``registry.register("x", make_x)``) or as a
        decorator (``@registry.register("x")``).  Re-registering an
        existing name raises unless ``replace=True`` -- silent
        shadowing of a builtin is almost always a bug.
        """
        if not name or not isinstance(name, str):
            raise ValueError(f"{self.kind} name must be a non-empty string")

        def _add(fn: Factory) -> Factory:
            if not replace and name in self._factories:
                raise ValueError(
                    f"{self.kind} {name!r} is already registered "
                    f"(pass replace=True to override)"
                )
            self._factories[name] = fn
            return fn

        return _add if factory is None else _add(factory)

    def unregister(self, name: str) -> None:
        """Remove a registration (primarily for tests)."""
        self._factories.pop(name, None)

    # -- resolution -----------------------------------------------------

    def get(self, name: str) -> Factory:
        """The factory registered under ``name`` (ValueError if none)."""
        try:
            return self._factories[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r} "
                f"(registered: {', '.join(self.names()) or 'none'})"
            ) from None

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Resolve ``name`` and invoke its factory."""
        return self.get(name)(*args, **kwargs)

    def names(self) -> list[str]:
        """Registered names, sorted."""
        return sorted(self._factories)

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._factories)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {self.names()})"


#: Storage backends: ``factory(path, **options) -> StorageBackend``.
BACKENDS = Registry("storage backend")

#: Shard executors: ``factory(workers=None) -> ShardExecutor``.
EXECUTORS = Registry("executor")

#: Window consumers: ``factory(engine, **options) -> consumer``.
CONSUMERS = Registry("consumer")

#: Drift detectors: ``factory(**options) -> detector``.
DRIFT_DETECTORS = Registry("drift detector")

#: Workloads: ``factory(duration, seed, rate, **options) -> callable``.
WORKLOADS = Registry("workload")

#: Application models: ``factory(**options) -> Application``.
APPLICATIONS = Registry("application")

#: Telemetry exporters: ``factory(**options) -> exporter`` -- an
#: object with a ``content_type`` attribute and a ``render(telemetry)
#: -> str`` method, served at ``/export/<name>``.
EXPORTERS = Registry("exporter")

#: Every registry by its spec-facing key, for introspection tools.
REGISTRIES = {
    "backend": BACKENDS,
    "executor": EXECUTORS,
    "consumer": CONSUMERS,
    "drift_detector": DRIFT_DETECTORS,
    "workload": WORKLOADS,
    "application": APPLICATIONS,
    "exporter": EXPORTERS,
}

# The public registration entry points (also re-exported by repro.api).
register_backend = BACKENDS.register
register_executor = EXECUTORS.register
register_consumer = CONSUMERS.register
register_drift_detector = DRIFT_DETECTORS.register
register_workload = WORKLOADS.register
register_application = APPLICATIONS.register
register_exporter = EXPORTERS.register


# -- built-in backends ----------------------------------------------------


@BACKENDS.register("memory")
def _memory_backend(path: Any = None, **options: Any) -> Any:
    """Volatile in-RAM frame; ``path`` is accepted and ignored."""
    from repro.persistence.backend import MemoryBackend

    return MemoryBackend(**options)


@BACKENDS.register("sqlite")
def _sqlite_backend(path: Any, **options: Any) -> Any:
    from repro.persistence.sqlite_backend import SqliteBackend

    return SqliteBackend(path, **options)


@BACKENDS.register("spill")
def _spill_backend(path: Any, **options: Any) -> Any:
    from repro.persistence.spill import SpillBackend

    return SpillBackend(path, **options)


# -- built-in executors ---------------------------------------------------


@EXECUTORS.register("serial")
def _serial_executor(workers: int | None = None) -> Any:
    from repro.parallel.executor import ShardExecutor

    return ShardExecutor()


@EXECUTORS.register("thread")
def _thread_executor(workers: int | None = None) -> Any:
    from repro.parallel.executor import (
        ShardExecutor,
        ThreadShardExecutor,
        default_workers,
    )

    resolved = workers or default_workers()
    # A one-worker pool cannot overlap anything; fall back to serial.
    return ShardExecutor() if resolved == 1 \
        else ThreadShardExecutor(resolved)


@EXECUTORS.register("process")
def _process_executor(workers: int | None = None) -> Any:
    from repro.parallel.executor import (
        ProcessShardExecutor,
        ShardExecutor,
        default_workers,
    )

    resolved = workers or default_workers()
    return ShardExecutor() if resolved == 1 \
        else ProcessShardExecutor(resolved)


@EXECUTORS.register("shm")
def _shm_executor(workers: int | None = None) -> Any:
    """Process shards with zero-copy shared-memory array transport."""
    from repro.parallel.executor import ShardExecutor, default_workers
    from repro.parallel.shm import ShmShardExecutor

    resolved = workers or default_workers()
    return ShardExecutor() if resolved == 1 \
        else ShmShardExecutor(resolved)


# -- built-in drift detectors ---------------------------------------------


@DRIFT_DETECTORS.register("standard")
def _standard_drift(**options: Any) -> Any:
    """Location/spread + coherence-gated shape drift (the default)."""
    from repro.streaming.drift import DriftDetector

    return DriftDetector(**options)


# -- built-in workloads ---------------------------------------------------


@WORKLOADS.register("random")
def _random_workload(duration: float, seed: int, rate: float,
                     **options: Any) -> Any:
    from repro.workload import RandomWorkload

    return RandomWorkload(duration=duration, seed=seed, **options)


@WORKLOADS.register("constant")
def _constant_workload(duration: float, seed: int, rate: float,
                       **options: Any) -> Any:
    from repro.workload import constant_rate

    return constant_rate(rate)


@WORKLOADS.register("ramp")
def _ramp_workload(duration: float, seed: int, rate: float,
                   *, start_rate: float = 0.0, **options: Any) -> Any:
    """Linear ramp from ``start_rate`` up to the spec's ``rate``."""
    from repro.workload import ramp_rate

    return ramp_rate(start_rate, rate, duration)


# -- built-in consumers ---------------------------------------------------


@CONSUMERS.register("rca")
def _rca_consumer(engine: Any, *, percentile: float = 90.0,
                  latency_threshold: float = 1.0,
                  rank_threshold: float = 0.5, **options: Any) -> Any:
    """Auto-triggered window-diff RCA on drift + SLA coincidence."""
    from repro.autoscaling.sla import SLACondition
    from repro.streaming.consumers import WindowDiffRCA

    return WindowDiffRCA(
        engine,
        sla=SLACondition(percentile=percentile,
                         threshold=latency_threshold),
        threshold=rank_threshold,
        **options,
    )


@CONSUMERS.register("scaling")
def _scaling_consumer(engine: Any, *, component: str,
                      scale_up: float, scale_down: float,
                      guide_component: str | None = None,
                      **options: Any) -> Any:
    """Autoscaling rule re-bound to the live guiding metric."""
    from repro.streaming.consumers import LiveScalingPolicy

    return LiveScalingPolicy.from_options(
        component=component, scale_up=scale_up, scale_down=scale_down,
        guide_component=guide_component, **options,
    )


# -- built-in applications ------------------------------------------------


@APPLICATIONS.register("sharelatex")
def _sharelatex(**options: Any) -> Any:
    from repro.apps import build_sharelatex_application

    return build_sharelatex_application(**options)


@APPLICATIONS.register("openstack")
def _openstack(**options: Any) -> Any:
    from repro.apps import build_openstack_application

    return build_openstack_application(**options)


# -- built-in telemetry exporters -------------------------------------------


@EXPORTERS.register("prometheus")
def _prometheus_exporter(**options: Any) -> Any:
    from repro.obs.exposition import PrometheusExporter

    return PrometheusExporter(**options)


@EXPORTERS.register("json")
def _json_exporter(**options: Any) -> Any:
    from repro.obs.exposition import JsonExporter

    return JsonExporter(**options)
