"""The public pipeline API: declare a run once, bind policy by name.

Sieve's value is a *pipeline* (load -> reduce -> identify, plus the
streaming / persistence / parallel layers), and this package is its
single public entry point -- the RAFDA-style separation of application
logic from distribution policy, made concrete:

* :class:`~repro.api.spec.RunSpec` -- a frozen, serializable
  description of one run (app + workload + configs + storage /
  executor / consumer policy) that round-trips through JSON or TOML;
* :func:`~repro.api.session.build_pipeline` /
  :class:`~repro.api.session.PipelineBuilder` -- turn a spec into a
  running batch, streaming, record or replay
  :class:`~repro.api.session.Session`;
* :mod:`~repro.api.registry` -- string-keyed plugin registries
  (``register_backend`` / ``register_executor`` /
  ``register_consumer`` / ``register_drift_detector`` /
  ``register_workload`` / ``register_application`` /
  ``register_exporter``) through which every policy name in a spec,
  a config or a CLI flag resolves.

The ten-line library quickstart::

    from repro.api import PipelineBuilder

    session = (PipelineBuilder("sharelatex").mode("stream")
               .workload("constant", rate=30.0)
               .storage("sqlite", "run.db")
               .executor("process", workers=4)
               .duration(120).seed(1).build())
    outcome = session.run()
    print(outcome.summary)
    session.close()

Everything here is importable lazily; only the (dependency-free)
registry module loads eagerly, so low-level layers may resolve names
through :mod:`repro.api.registry` without import cycles.
"""

from repro.api.registry import (
    APPLICATIONS,
    BACKENDS,
    CONSUMERS,
    DRIFT_DETECTORS,
    EXECUTORS,
    EXPORTERS,
    REGISTRIES,
    WORKLOADS,
    Registry,
    register_application,
    register_backend,
    register_consumer,
    register_drift_detector,
    register_executor,
    register_exporter,
    register_workload,
)

#: Symbols resolved lazily (PEP 562): spec and session pull in the
#: analysis stack, which itself consults the registry above.
_LAZY_EXPORTS = {
    "ConsumerSpec": "repro.api.spec",
    "RUN_MODES": "repro.api.spec",
    "RunSpec": "repro.api.spec",
    "SPEC_VERSION": "repro.api.spec",
    "ServiceSpec": "repro.api.spec",
    "StorageSpec": "repro.api.spec",
    "TelemetrySpec": "repro.api.spec",
    "WorkloadSpec": "repro.api.spec",
    "load_spec": "repro.api.spec",
    "loads_spec": "repro.api.spec",
    "save_spec": "repro.api.spec",
    "spec_to_json": "repro.api.spec",
    "spec_to_toml": "repro.api.spec",
    "BatchSession": "repro.api.session",
    "CatalogSession": "repro.api.session",
    "PipelineBuilder": "repro.api.session",
    "RCASession": "repro.api.session",
    "RecordOutcome": "repro.api.session",
    "RecordSession": "repro.api.session",
    "ReplayOutcome": "repro.api.session",
    "ReplaySession": "repro.api.session",
    "ServeOutcome": "repro.api.session",
    "ServeSession": "repro.api.session",
    "Session": "repro.api.session",
    "StreamOutcome": "repro.api.session",
    "StreamSession": "repro.api.session",
    "TraceOverheadSession": "repro.api.session",
    "build_pipeline": "repro.api.session",
    "run_spec": "repro.api.session",
}


def __getattr__(name: str) -> object:
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))


__all__ = [
    "APPLICATIONS",
    "BACKENDS",
    "CONSUMERS",
    "DRIFT_DETECTORS",
    "EXECUTORS",
    "EXPORTERS",
    "REGISTRIES",
    "WORKLOADS",
    "Registry",
    "register_application",
    "register_backend",
    "register_consumer",
    "register_drift_detector",
    "register_executor",
    "register_exporter",
    "register_workload",
    *sorted(_LAZY_EXPORTS),
]
