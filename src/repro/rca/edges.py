"""RCA step #4: dependency-graph edge filtering.

Metric-level Granger relations are lifted to *cluster-level edges*
(the clusters containing the two endpoint metrics).  Edges are then
compared across versions; the paper's three events of interest
(Table 2 / Section 4.2):

1. edges involving at least one cluster with a high novelty score;
2. appearance/disappearance of edges between clusters maintained with
   high similarity;
3. time-lag changes on edges between high-similarity clusters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.causality.depgraph import DependencyGraph
from repro.clustering.reduction import ComponentClustering
from repro.rca.similarity import ClusterMatch, ClusterNovelty


@dataclass(frozen=True)
class ClusterEdge:
    """A dependency edge at cluster granularity."""

    source_component: str
    source_cluster: int
    target_component: str
    target_cluster: int
    lag: int

    @property
    def key(self) -> tuple[str, int, str, int]:
        """Identity ignoring the lag (lag changes are an *event*)."""
        return (self.source_component, self.source_cluster,
                self.target_component, self.target_cluster)


def lift_to_cluster_edges(
    graph: DependencyGraph,
    clusterings: dict[str, ComponentClustering],
) -> dict[tuple[str, int, str, int], ClusterEdge]:
    """Aggregate metric relations into cluster-level edges.

    When several relations connect the same cluster pair, the smallest
    lag wins (the tightest coupling observed).
    """
    edges: dict[tuple[str, int, str, int], ClusterEdge] = {}
    for relation in graph.relations:
        src_clustering = clusterings.get(relation.source_component)
        dst_clustering = clusterings.get(relation.target_component)
        if src_clustering is None or dst_clustering is None:
            continue
        src_cluster = src_clustering.cluster_of(relation.source_metric)
        dst_cluster = dst_clustering.cluster_of(relation.target_metric)
        if src_cluster is None or dst_cluster is None:
            continue
        edge = ClusterEdge(
            source_component=relation.source_component,
            source_cluster=src_cluster.index,
            target_component=relation.target_component,
            target_cluster=dst_cluster.index,
            lag=relation.lag,
        )
        existing = edges.get(edge.key)
        if existing is None or edge.lag < existing.lag:
            edges[edge.key] = edge
    return edges


@dataclass
class EdgeClassification:
    """Step-#4 outcome at one similarity threshold."""

    threshold: float
    new: list[ClusterEdge] = field(default_factory=list)
    discarded: list[ClusterEdge] = field(default_factory=list)
    lag_changed: list[tuple[ClusterEdge, ClusterEdge]] = field(
        default_factory=list)
    novel_endpoint: list[ClusterEdge] = field(default_factory=list)
    """Edges maintained across versions whose endpoint cluster(s)
    gained or lost metrics -- the paper's event 1.  The Figure-8 edge
    (Nova API's instance-state cluster, where ACTIVE was replaced by
    ERROR, joined to Neutron's port-status cluster) is of this kind."""

    unchanged: list[ClusterEdge] = field(default_factory=list)

    def interesting_edges(self) -> list[ClusterEdge]:
        """Edges flagged by any of the three events."""
        return (self.new + self.discarded + self.novel_endpoint
                + [f_edge for _c, f_edge in self.lag_changed])

    def counts(self) -> dict[str, int]:
        return {
            "new": len(self.new),
            "discarded": len(self.discarded),
            "lag_changed": len(self.lag_changed),
            "novel_endpoint": len(self.novel_endpoint),
            "unchanged": len(self.unchanged),
        }


def _cluster_key_map(
    matches_by_component: dict[str, list[ClusterMatch]],
) -> tuple[dict[tuple[str, int], tuple[str, int]], dict[tuple[str, int], float]]:
    """Map C-version cluster ids to F-version ids, with similarities.

    Returns ``(c_to_f, similarity_of_c_cluster)``.
    """
    c_to_f: dict[tuple[str, int], tuple[str, int]] = {}
    sims: dict[tuple[str, int], float] = {}
    for component, matches in matches_by_component.items():
        for match in matches:
            if match.cluster_c is not None:
                key_c = (component, match.cluster_c.index)
                sims[key_c] = match.similarity
                if match.cluster_f is not None:
                    c_to_f[key_c] = (component, match.cluster_f.index)
    return c_to_f, sims


def classify_edges(
    graph_c: DependencyGraph,
    graph_f: DependencyGraph,
    clusterings_c: dict[str, ComponentClustering],
    clusterings_f: dict[str, ComponentClustering],
    matches_by_component: dict[str, list[ClusterMatch]],
    novelty_by_component: dict[str, list[ClusterNovelty]],
    threshold: float = 0.5,
) -> EdgeClassification:
    """Compare cluster-level edges of the two versions.

    An edge is only reported (in any class other than ``unchanged``)
    when its endpoint clusters either carry novelty (event 1) or are
    maintained across versions with similarity >= ``threshold``
    (events 2 and 3); edges between low-similarity, non-novel clusters
    are noise from re-clustering and are suppressed.
    """
    edges_c = lift_to_cluster_edges(graph_c, clusterings_c)
    edges_f = lift_to_cluster_edges(graph_f, clusterings_f)
    c_to_f, sims_c = _cluster_key_map(matches_by_component)
    f_to_c = {v: k for k, v in c_to_f.items()}

    # Novel clusters (>=1 novel metric) per version-specific key.
    novel_c: set[tuple[str, int]] = set()
    novel_f: set[tuple[str, int]] = set()
    for component, annotations in novelty_by_component.items():
        for ann in annotations:
            if ann.discarded_metrics and ann.match.cluster_c is not None:
                novel_c.add((component, ann.match.cluster_c.index))
            if ann.new_metrics and ann.match.cluster_f is not None:
                novel_f.add((component, ann.match.cluster_f.index))

    def f_key_similarity(key: tuple[str, int]) -> float:
        c_key = f_to_c.get(key)
        return sims_c.get(c_key, 0.0) if c_key is not None else 0.0

    def edge_passes(src_key, dst_key, novel_set, sim_fn) -> bool:
        has_novelty = src_key in novel_set or dst_key in novel_set
        high_similarity = (sim_fn(src_key) >= threshold
                           and sim_fn(dst_key) >= threshold)
        return has_novelty or high_similarity

    # Translate C edges into F cluster coordinates for comparison.
    result = EdgeClassification(threshold=threshold)
    translated_c: dict[tuple, ClusterEdge] = {}
    for edge in edges_c.values():
        src_f = c_to_f.get((edge.source_component, edge.source_cluster))
        dst_f = c_to_f.get((edge.target_component, edge.target_cluster))
        if src_f is None or dst_f is None:
            # Endpoint cluster vanished: a discarded edge if it passes.
            src_key = (edge.source_component, edge.source_cluster)
            dst_key = (edge.target_component, edge.target_cluster)
            if edge_passes(src_key, dst_key, novel_c,
                           lambda k: sims_c.get(k, 0.0)):
                result.discarded.append(edge)
            continue
        translated_c[(src_f, dst_f)] = edge

    seen_f_keys: set[tuple] = set()
    for edge in edges_f.values():
        src_key = (edge.source_component, edge.source_cluster)
        dst_key = (edge.target_component, edge.target_cluster)
        pair = (src_key, dst_key)
        counterpart = translated_c.get(pair)
        seen_f_keys.add(pair)
        if counterpart is None:
            if edge_passes(src_key, dst_key, novel_f, f_key_similarity):
                result.new.append(edge)
            continue
        if counterpart.lag != edge.lag:
            if edge_passes(src_key, dst_key, novel_f, f_key_similarity):
                result.lag_changed.append((counterpart, edge))
            else:
                result.unchanged.append(edge)
        elif src_key in novel_f or dst_key in novel_f:
            # Event 1: the edge survived but an endpoint cluster's
            # composition changed (metrics appeared/disappeared).
            result.novel_endpoint.append(edge)
        else:
            result.unchanged.append(edge)

    for pair, edge in translated_c.items():
        if pair in seen_f_keys:
            continue
        src_key = (edge.source_component, edge.source_cluster)
        dst_key = (edge.target_component, edge.target_cluster)
        if edge_passes(src_key, dst_key, novel_c,
                       lambda k: sims_c.get(k, 0.0)):
            result.discarded.append(edge)
    return result
