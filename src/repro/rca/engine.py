"""RCA step #5 and the engine tying all five steps together.

The engine consumes the :class:`~repro.core.results.SieveResult` of a
correct (C) and a faulty (F) run and produces an :class:`RCAReport`:
component rankings, cluster-novelty statistics (Figure 7a), edge
classifications per similarity threshold (Figures 7b/c), and the final
ordered {component, metric list} pairs (Table 5's 'Final ranking').
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.results import SieveResult
from repro.rca.edges import EdgeClassification, classify_edges
from repro.rca.novelty import ComponentDiff, metric_diff, rank_components
from repro.rca.similarity import (
    ClusterNovelty,
    annotate_novelty,
    match_clusters,
)


@dataclass
class RootCauseCandidate:
    """One entry of the final ranked output."""

    rank: int
    component: str
    metrics: list[str]
    novelty_score: int


@dataclass
class RCAReport:
    """Everything the five RCA steps produce."""

    diffs: dict[str, ComponentDiff]
    component_ranking: list[ComponentDiff]
    cluster_novelty: dict[str, list[ClusterNovelty]]
    edge_classifications: dict[float, EdgeClassification]
    final_ranking: list[RootCauseCandidate]
    threshold: float

    def cluster_novelty_histogram(self) -> Counter:
        """Figure 7(a): cluster counts per novelty category."""
        histogram: Counter = Counter()
        for annotations in self.cluster_novelty.values():
            for ann in annotations:
                histogram[ann.category] += 1
                histogram["total"] += 1
        return histogram

    def implicated_state(self, threshold: float | None = None) -> dict:
        """Figure 7(c): #components/#clusters/#metrics after filtering."""
        threshold = self.threshold if threshold is None else threshold
        classification = self.edge_classifications[threshold]
        components: set[str] = set()
        clusters: set[tuple[str, int]] = set()
        for edge in classification.interesting_edges():
            components.add(edge.source_component)
            components.add(edge.target_component)
            clusters.add((edge.source_component, edge.source_cluster))
            clusters.add((edge.target_component, edge.target_cluster))
        metrics = 0
        for component, annotations in self.cluster_novelty.items():
            for ann in annotations:
                keys = set()
                if ann.match.cluster_c is not None:
                    keys.add((component, ann.match.cluster_c.index))
                if ann.match.cluster_f is not None:
                    keys.add((component, ann.match.cluster_f.index))
                if keys & clusters:
                    members: set[str] = set()
                    if ann.match.cluster_f is not None:
                        members |= ann.match.cluster_f.metric_set()
                    elif ann.match.cluster_c is not None:
                        members |= ann.match.cluster_c.metric_set()
                    metrics += len(members)
        return {
            "components": len(components),
            "clusters": len(clusters),
            "metrics": metrics,
        }


class RCAEngine:
    """Compares two Sieve results and ranks root-cause candidates."""

    def __init__(self, thresholds=(0.0, 0.5, 0.6, 0.7)):
        """``thresholds`` is the similarity sweep of Figure 7(b/c)."""
        self.thresholds = tuple(thresholds)

    def compare(self, result_c: SieveResult, result_f: SieveResult,
                threshold: float = 0.5) -> RCAReport:
        """Run the five RCA steps.

        ``threshold`` selects the similarity cut used for the *final*
        ranking; every value in ``self.thresholds`` is still evaluated
        for the Figure 7 sweeps.
        """
        if threshold not in self.thresholds:
            raise ValueError(
                f"threshold {threshold} not in the configured sweep "
                f"{self.thresholds}"
            )
        # Steps 1-2: metric novelty and component ranking.
        diffs = metric_diff(result_c.run.frame, result_f.run.frame)
        ranking = rank_components(diffs)

        # Step 3: cluster matching + novelty annotation.
        cluster_novelty: dict[str, list[ClusterNovelty]] = {}
        matches = {}
        components = sorted(
            set(result_c.clusterings) | set(result_f.clusterings)
        )
        for component in components:
            clustering_c = result_c.clusterings.get(component)
            clustering_f = result_f.clusterings.get(component)
            if clustering_c is None or clustering_f is None:
                continue
            component_matches = match_clusters(component, clustering_c,
                                               clustering_f)
            matches[component] = component_matches
            cluster_novelty[component] = annotate_novelty(
                component_matches, diffs[component]
            )

        # Step 4: edge filtering at every threshold of the sweep.
        edge_classifications = {
            t: classify_edges(
                result_c.dependency_graph, result_f.dependency_graph,
                result_c.clusterings, result_f.clusterings,
                matches, cluster_novelty, threshold=t,
            )
            for t in self.thresholds
        }

        # Step 5: final {component, metric list} ranking.
        final = self._final_ranking(
            ranking, cluster_novelty, edge_classifications[threshold]
        )
        return RCAReport(
            diffs=diffs,
            component_ranking=ranking,
            cluster_novelty=cluster_novelty,
            edge_classifications=edge_classifications,
            final_ranking=final,
            threshold=threshold,
        )

    def compare_windows(self, correct, faulty,
                        threshold: float = 0.5) -> RCAReport:
        """Diff two streaming window analyses (Section 4.2, online).

        ``correct`` and ``faulty`` are any objects exposing
        ``to_sieve_result()`` -- in practice two
        :class:`repro.streaming.analyzer.WindowAnalysis` snapshots taken
        before and after a suspected regression, so RCA no longer needs
        two dedicated offline loads.
        """
        return self.compare(correct.to_sieve_result(),
                            faulty.to_sieve_result(),
                            threshold=threshold)

    @staticmethod
    def _final_ranking(
        ranking: list[ComponentDiff],
        cluster_novelty: dict[str, list[ClusterNovelty]],
        classification: EdgeClassification,
    ) -> list[RootCauseCandidate]:
        """Order by step-2 rank, keep components surviving step 4."""
        surviving: set[str] = set()
        edge_clusters: set[tuple[str, int]] = set()
        for edge in classification.interesting_edges():
            surviving.add(edge.source_component)
            surviving.add(edge.target_component)
            edge_clusters.add((edge.source_component, edge.source_cluster))
            edge_clusters.add((edge.target_component, edge.target_cluster))

        candidates: list[RootCauseCandidate] = []
        rank = 0
        for diff in ranking:
            if diff.component not in surviving:
                continue
            rank += 1
            metrics: set[str] = set(diff.new) | set(diff.discarded)
            for ann in cluster_novelty.get(diff.component, ()):
                keys = set()
                if ann.match.cluster_c is not None:
                    keys.add((diff.component, ann.match.cluster_c.index))
                if ann.match.cluster_f is not None:
                    keys.add((diff.component, ann.match.cluster_f.index))
                if keys & edge_clusters and ann.match.cluster_f is not None:
                    metrics |= ann.match.cluster_f.metric_set()
            candidates.append(RootCauseCandidate(
                rank=rank,
                component=diff.component,
                metrics=sorted(metrics),
                novelty_score=diff.novelty_score,
            ))
        return candidates
