"""RCA step #3: cluster novelty and inter-version cluster similarity.

Cluster similarity uses the paper's modified Jaccard coefficient
(eq. 2):

    S = |M_C  intersect  M_F| / |M_C|

normalized by the *correct* cluster's size only, "to eliminate the
penalty imposed by new metrics added to the faulty cluster".

Clusters of one component are matched across versions greedily by
best similarity; matches drive both the cluster-novelty categories of
Figure 7(a) and the edge events of step #4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clustering.reduction import Cluster, ComponentClustering
from repro.rca.novelty import ComponentDiff


def cluster_similarity(metrics_c: frozenset[str] | set[str],
                       metrics_f: frozenset[str] | set[str]) -> float:
    """The paper's eq. 2; 0.0 for an empty correct cluster."""
    if not metrics_c:
        return 0.0
    return len(set(metrics_c) & set(metrics_f)) / len(metrics_c)


@dataclass(frozen=True)
class ClusterMatch:
    """A matched (or half-matched) cluster pair of one component."""

    component: str
    cluster_c: Cluster | None
    """None when the F cluster has no counterpart."""

    cluster_f: Cluster | None
    """None when the C cluster disappeared."""

    similarity: float

    @property
    def is_matched(self) -> bool:
        return self.cluster_c is not None and self.cluster_f is not None


def match_clusters(component: str,
                   clustering_c: ComponentClustering,
                   clustering_f: ComponentClustering) -> list[ClusterMatch]:
    """Greedy best-similarity matching of one component's clusters.

    Every C cluster is matched to the remaining F cluster with the
    highest eq.-2 similarity (ties broken by cluster index); leftover
    clusters on either side become half-matches with similarity 0.
    """
    available_f = {c.index: c for c in clustering_f.clusters}
    matches: list[ClusterMatch] = []

    ordered_c = sorted(clustering_c.clusters, key=lambda c: -len(c.metrics))
    for cluster_c in ordered_c:
        best_f = None
        best_sim = 0.0
        for cluster_f in available_f.values():
            sim = cluster_similarity(cluster_c.metric_set(),
                                     cluster_f.metric_set())
            if sim > best_sim or (sim == best_sim and best_f is None
                                  and sim > 0):
                best_f, best_sim = cluster_f, sim
        if best_f is not None and best_sim > 0:
            del available_f[best_f.index]
            matches.append(ClusterMatch(component, cluster_c, best_f,
                                        best_sim))
        else:
            matches.append(ClusterMatch(component, cluster_c, None, 0.0))

    for cluster_f in available_f.values():
        matches.append(ClusterMatch(component, None, cluster_f, 0.0))
    return matches


@dataclass(frozen=True)
class ClusterNovelty:
    """Novelty annotation of one cluster match (Figure 7(a) categories)."""

    match: ClusterMatch
    new_metrics: frozenset[str]
    discarded_metrics: frozenset[str]

    @property
    def novelty_score(self) -> int:
        return len(self.new_metrics) + len(self.discarded_metrics)

    @property
    def category(self) -> str:
        """One of ``new``, ``discarded``, ``new_and_discarded``,
        ``changed``, ``unchanged`` (Figure 7(a) bars)."""
        has_new = bool(self.new_metrics)
        has_discarded = bool(self.discarded_metrics)
        if has_new and has_discarded:
            return "new_and_discarded"
        if has_new:
            return "new"
        if has_discarded:
            return "discarded"
        if self.match.is_matched and self.match.similarity < 1.0:
            return "changed"
        if not self.match.is_matched:
            return "changed"  # re-shuffled without novel metrics
        return "unchanged"


def annotate_novelty(matches: list[ClusterMatch],
                     diff: ComponentDiff) -> list[ClusterNovelty]:
    """Attach new/discarded metric sets to every cluster match."""
    out = []
    for match in matches:
        f_metrics = (match.cluster_f.metric_set()
                     if match.cluster_f is not None else frozenset())
        c_metrics = (match.cluster_c.metric_set()
                     if match.cluster_c is not None else frozenset())
        out.append(ClusterNovelty(
            match=match,
            new_metrics=frozenset(f_metrics & diff.new),
            discarded_metrics=frozenset(c_metrics & diff.discarded),
        ))
    return out
