"""RCA steps #1 and #2: metric novelty and component rankings.

"If a metric m is present in both C and F, it intuitively represents
the maintenance of healthy behavior [...].  Conversely, the appearance
of a new metric (or the disappearance of a previously existing metric)
between versions is likely to be related with the anomaly"
(Section 4.2).  Components are ranked by their total count of novel
metrics -- Table 5's 'Changed (New/Discarded)' column.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.timeseries import MetricFrame


@dataclass(frozen=True)
class ComponentDiff:
    """Metric-presence differences of one component between versions."""

    component: str
    new: frozenset[str]
    """Metrics present in F but not in C."""

    discarded: frozenset[str]
    """Metrics present in C but not in F."""

    unchanged: frozenset[str]

    @property
    def novelty_score(self) -> int:
        """Total novel metrics (the Table 5 'Changed' count)."""
        return len(self.new) + len(self.discarded)

    @property
    def total_metrics(self) -> int:
        """Union of metrics over both versions (Table 5 'Total')."""
        return len(self.new) + len(self.discarded) + len(self.unchanged)


def metric_diff(frame_c: MetricFrame,
                frame_f: MetricFrame) -> dict[str, ComponentDiff]:
    """Step #1: per-component new/discarded/unchanged metric sets."""
    components = sorted(set(frame_c.components) | set(frame_f.components))
    out: dict[str, ComponentDiff] = {}
    for component in components:
        metrics_c = set(frame_c.metrics_of(component))
        metrics_f = set(frame_f.metrics_of(component))
        out[component] = ComponentDiff(
            component=component,
            new=frozenset(metrics_f - metrics_c),
            discarded=frozenset(metrics_c - metrics_f),
            unchanged=frozenset(metrics_c & metrics_f),
        )
    return out


def rank_components(diffs: dict[str, ComponentDiff]) -> list[ComponentDiff]:
    """Step #2: components by descending novelty score.

    Zero-novelty components are excluded (they get '-' in Table 5).
    Ties break by component name for determinism.
    """
    interesting = [d for d in diffs.values() if d.novelty_score > 0]
    return sorted(interesting,
                  key=lambda d: (-d.novelty_score, d.component))
