"""Case study #2: root cause analysis (paper Sections 4.2, 6.3).

The RCA engine compares Sieve's outputs for a *correct* (C) and a
*faulty* (F) version of an application and emits a ranked list of
{component, metric list} pairs pointing at the root cause.  The five
steps of Figure 2:

1. **Metric analysis** -- new/discarded metrics between versions
   (:mod:`repro.rca.novelty`);
2. **Component rankings** -- by novelty score;
3. **Cluster analysis** -- cluster novelty and the modified-Jaccard
   cluster similarity of eq. 2 (:mod:`repro.rca.similarity`);
4. **Edge filtering** -- new/discarded/lag-changed dependency-graph
   edges gated by novelty and similarity (:mod:`repro.rca.edges`);
5. **Final rankings** -- the ordered {component, metric list} output
   (:mod:`repro.rca.engine`).
"""

from repro.rca.edges import ClusterEdge, EdgeClassification, classify_edges
from repro.rca.engine import RCAEngine, RCAReport
from repro.rca.novelty import ComponentDiff, metric_diff, rank_components
from repro.rca.similarity import ClusterMatch, cluster_similarity, match_clusters

__all__ = [
    "ClusterEdge",
    "ClusterMatch",
    "ComponentDiff",
    "EdgeClassification",
    "RCAEngine",
    "RCAReport",
    "classify_edges",
    "cluster_similarity",
    "match_clusters",
    "metric_diff",
    "rank_components",
]
