"""The storage-backend protocol and the in-memory reference backend.

Sieve evaluates monitoring cost by replaying recorded runs through a
metered store; the analysis pipeline itself never cares *where* the
series live.  This module pins that separation down (in the spirit of
RAFDA's split between application logic and distribution policy): a
:class:`StorageBackend` answers point writes, range queries and frame
materialization, and everything above it --
:class:`~repro.metrics.store.MetricsStore`, the streaming
:class:`~repro.streaming.window.WindowStore`, the record/replay CLI --
is backend-agnostic.  The invariant every implementation must honour:
replaying a recorded run out of the backend reproduces the in-memory
batch analysis exactly (same samples, same order, bit-identical
floats).

Backends also speak the ingestion-bus subscriber protocol
(:meth:`StorageBackend.ingest`), so ``bus.subscribe(backend)`` captures
a live run directly.
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

import numpy as np

from repro.metrics.timeseries import MetricFrame, MetricKey, TimeSeries


@runtime_checkable
class StorageBackend(Protocol):
    """Where a metrics store keeps its series."""

    def write(self, component: str, metric: str, times, values) -> int:
        """Append ordered samples to one series; returns points written."""
        ...  # pragma: no cover - protocol definition

    def query(self, component: str, metric: str,
              start: float = float("-inf"),
              end: float = float("inf")) -> TimeSeries:
        """Samples with ``start <= t <= end`` (empty for unknown keys).

        Backends with tiered retention serve raw samples inside the
        schedule's full-resolution horizon and one (bucket start,
        bucket mean) sample per rollup bucket beyond it."""
        ...  # pragma: no cover - protocol definition

    def query_rollup(self, component: str, metric: str,
                     start: float = float("-inf"),
                     end: float = float("inf")):
        """Aggregate-aware range read: a
        :class:`~repro.persistence.retention.RollupSeries` whose rows
        carry (mean, min, max, count); raw samples have count 1.
        :class:`BackendBase` derives it from :meth:`query`, so only
        rollup-storing backends override it."""
        ...  # pragma: no cover - protocol definition

    def keys(self) -> list[MetricKey]:
        """Every stored series identity, sorted."""
        ...  # pragma: no cover - protocol definition

    def series_count(self) -> int:
        ...  # pragma: no cover - protocol definition

    def sample_count(self) -> int:
        ...  # pragma: no cover - protocol definition

    def newest_time(self, component: str, metric: str) -> float | None:
        """Newest stored timestamp of one series (None when empty)."""
        ...  # pragma: no cover - protocol definition

    def to_frame(self,
                 keep: Iterable[MetricKey] | None = None) -> MetricFrame:
        """Materialize stored series as a :class:`MetricFrame`."""
        ...  # pragma: no cover - protocol definition

    def set_metadata(self, meta: dict) -> None:
        """Attach run metadata (application, seed, call graph, ...)."""
        ...  # pragma: no cover - protocol definition

    def metadata(self) -> dict:
        ...  # pragma: no cover - protocol definition

    def flush(self) -> None:
        """Make writes so far durable (no-op for volatile backends)."""
        ...  # pragma: no cover - protocol definition

    def compact(self, retention: float | None = None) -> dict:
        """Reclaim storage; samples older than (per-series newest -
        ``retention``) may be dropped (None keeps everything).
        Returns backend-specific compaction stats."""
        ...  # pragma: no cover - protocol definition

    def close(self) -> None:
        ...  # pragma: no cover - protocol definition


def as_arrays(times, values) -> tuple[np.ndarray, np.ndarray]:
    """Validate and coerce one write batch to float arrays."""
    t = np.asarray(times, dtype=float).reshape(-1)
    v = np.asarray(values, dtype=float).reshape(-1)
    if t.size != v.size:
        raise ValueError("times and values must have equal length")
    if t.size > 1 and np.any(np.diff(t) < 0):
        raise ValueError("backend writes require non-decreasing times")
    return t, v


class BackendBase:
    """Shared plumbing: metadata dict and the bus-subscriber alias."""

    def __init__(self) -> None:
        self._meta: dict = {}

    def ingest(self, component: str, metric: str, times, values) -> None:
        """Ingestion-bus subscriber protocol (delegates to ``write``)."""
        self.write(component, metric, times, values)

    def set_metadata(self, meta: dict) -> None:
        self._meta = dict(meta)

    def metadata(self) -> dict:
        return dict(self._meta)

    def flush(self) -> None:
        pass

    def compact(self, retention: float | None = None) -> dict:
        """Nothing to reclaim by default (volatile backends)."""
        return {}

    def close(self) -> None:
        pass

    # -- conveniences over the primitive operations ---------------------

    def query_rollup(self, component: str, metric: str,
                     start: float = float("-inf"),
                     end: float = float("inf")):
        """Generic fallback: every stored sample as a single-sample
        bucket (backends that store rollups override this)."""
        from repro.persistence.retention import RollupSeries

        ts = self.query(component, metric, start, end)
        return RollupSeries(ts.key, ts.times, ts.values, ts.values,
                            ts.values, np.ones(len(ts)))

    def newest_time(self, component: str, metric: str) -> float | None:
        """Generic fallback: full query (backends override cheaply)."""
        ts = self.query(component, metric)
        return float(ts.times[-1]) if len(ts) else None

    def to_frame(self,
                 keep: Iterable[MetricKey] | None = None) -> MetricFrame:
        keep_set = None if keep is None else set(keep)
        frame = MetricFrame()
        for key in self.keys():
            if keep_set is not None and key not in keep_set:
                continue
            ts = self.query(key.component, key.metric)
            if len(ts):
                frame.add(ts)
        return frame

    def series_count(self) -> int:
        return len(self.keys())


class MemoryBackend(BackendBase):
    """The original behaviour: everything in one live MetricFrame."""

    def __init__(self) -> None:
        super().__init__()
        self.frame = MetricFrame()

    def write(self, component: str, metric: str, times, values) -> int:
        t, v = as_arrays(times, values)
        if t.size:
            self.frame.series(component, metric).extend(t, v)
        return int(t.size)

    def query(self, component: str, metric: str,
              start: float = float("-inf"),
              end: float = float("inf")) -> TimeSeries:
        key = MetricKey(component, metric)
        stored = self.frame.get(key)
        if stored is None:
            return TimeSeries(key)
        return stored.window(start, end)

    def keys(self) -> list[MetricKey]:
        return sorted(ts.key for ts in self.frame)

    def newest_time(self, component: str, metric: str) -> float | None:
        stored = self.frame.get(MetricKey(component, metric))
        if stored is None or not len(stored):
            return None
        return float(stored.times[-1])

    def series_count(self) -> int:
        return len(self.frame)

    def sample_count(self) -> int:
        return self.frame.total_samples()

    def to_frame(self,
                 keep: Iterable[MetricKey] | None = None) -> MetricFrame:
        """With ``keep=None`` this is the live frame itself (zero-copy),
        matching the pre-backend ``MetricsStore`` semantics."""
        if keep is None:
            return self.frame
        return super().to_frame(keep)
