"""Durable point log on sqlite: batched appends, indexed range scans.

One ``series`` row per (component, metric) and one ``points`` row per
sample, indexed on ``(series_id, t)`` so range queries are a single
B-tree scan.  Writes go through ``executemany`` and are committed every
``commit_every`` points (plus on :meth:`flush`/:meth:`close`), the same
group-commit discipline a real TSDB applies to amortize fsync cost.
Run metadata (application, seed, call graph, ...) lives in a ``meta``
table as JSON, so a recorded database is self-describing.
"""

from __future__ import annotations

import json
import sqlite3

import numpy as np

from repro.metrics.timeseries import MetricKey, TimeSeries
from repro.persistence.backend import BackendBase, as_arrays
from repro.persistence.retention import (
    RetentionSchedule,
    RollupSeries,
    rollup_arrays,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS series (
    id INTEGER PRIMARY KEY,
    component TEXT NOT NULL,
    metric TEXT NOT NULL,
    UNIQUE (component, metric)
);
CREATE TABLE IF NOT EXISTS points (
    series_id INTEGER NOT NULL REFERENCES series(id),
    t REAL NOT NULL,
    v REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_points_series_t ON points (series_id, t);
CREATE TABLE IF NOT EXISTS rollups (
    series_id INTEGER NOT NULL REFERENCES series(id),
    resolution REAL NOT NULL,
    t REAL NOT NULL,
    mean REAL NOT NULL,
    vmin REAL NOT NULL,
    vmax REAL NOT NULL,
    n INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_rollups_series_t ON rollups (series_id, t);
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    payload TEXT NOT NULL
);
"""


class SqliteBackend(BackendBase):
    """Metric storage in a single sqlite database file.

    With a ``schedule`` (a tiered-retention string or
    :class:`~repro.persistence.retention.RetentionSchedule`),
    :meth:`trim` migrates points across tier horizons into the
    ``rollups`` table (one mean/min/max/count row per aligned bucket)
    and drops whole buckets past a finite final horizon.  The schema
    upgrade is additive: pre-rollup databases gain an empty ``rollups``
    table on open and stay readable everywhere.
    """

    def __init__(self, path=":memory:", commit_every: int = 50_000,
                 schedule: str | RetentionSchedule | None = None):
        if commit_every < 1:
            raise ValueError("commit_every must be >= 1")
        super().__init__()
        self.path = str(path)
        self.commit_every = commit_every
        if isinstance(schedule, str):
            schedule = RetentionSchedule.parse(schedule) \
                if schedule else None
        self.schedule = schedule
        # check_same_thread=False lets a dedicated writer thread (the
        # concurrent-ingest BatchingWriter) own the write path while
        # readers drain it first -- access is serialized in time by the
        # callers, which is the documented contract for disabling the
        # same-thread guard.
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        if self.path != ":memory:":
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        self._ids: dict[MetricKey, int] = {}
        self._last_time: dict[MetricKey, float] = {}
        self._uncommitted = 0

    # -- internals -----------------------------------------------------

    def _series_id(self, component: str, metric: str) -> int:
        key = MetricKey(component, metric)
        sid = self._ids.get(key)
        if sid is None:
            row = self._conn.execute(
                "SELECT id FROM series WHERE component=? AND metric=?",
                (component, metric),
            ).fetchone()
            if row is None:
                cursor = self._conn.execute(
                    "INSERT INTO series (component, metric) VALUES (?, ?)",
                    (component, metric),
                )
                sid = int(cursor.lastrowid)
            else:
                sid = int(row[0])
            self._ids[key] = sid
        return sid

    # -- write path ----------------------------------------------------

    def write(self, component: str, metric: str, times, values) -> int:
        t, v = as_arrays(times, values)
        if not t.size:
            return 0
        sid = self._series_id(component, metric)
        key = MetricKey(component, metric)
        last = self._last_time.get(key)
        if last is None:
            # First write this process: recover the ordering guard
            # from the database, so appending to an existing file
            # cannot interleave an older timeline (the corruption
            # would otherwise only surface at read time).
            row = self._conn.execute(
                "SELECT MAX(t) FROM points WHERE series_id=?", (sid,)
            ).fetchone()
            last = float("-inf") if row[0] is None else float(row[0])
        if t[0] < last:
            raise ValueError(
                f"out-of-order sqlite write at t={t[0]} for {key} "
                f"(stored tail t={last})"
            )
        self._last_time[key] = float(t[-1])
        self._conn.executemany(
            "INSERT INTO points (series_id, t, v) VALUES (?, ?, ?)",
            ((sid, float(ti), float(vi)) for ti, vi in zip(t, v)),
        )
        self._uncommitted += int(t.size)
        if self._uncommitted >= self.commit_every:
            self.flush()
        return int(t.size)

    # -- read path -----------------------------------------------------

    def query(self, component: str, metric: str,
              start: float = float("-inf"),
              end: float = float("inf")) -> TimeSeries:
        """Samples in range; inside the full-resolution horizon these
        are the raw writes, beyond it each rollup bucket appears as
        one sample (bucket start, bucket mean).  Rollup buckets are
        strictly older than every remaining point (the migration
        invariant), so the concatenation stays time-ordered."""
        key = MetricKey(component, metric)
        row = self._conn.execute(
            "SELECT id FROM series WHERE component=? AND metric=?",
            (component, metric),
        ).fetchone()
        if row is None:
            return TimeSeries(key)
        rolled = self._conn.execute(
            "SELECT t, mean FROM rollups WHERE series_id=? "
            "AND t>=? AND t<=? ORDER BY t",
            (int(row[0]), float(start), float(end)),
        ).fetchall()
        rows = self._conn.execute(
            "SELECT t, v FROM points WHERE series_id=? "
            "AND t>=? AND t<=? ORDER BY rowid",
            (int(row[0]), float(start), float(end)),
        ).fetchall()
        if not rolled and not rows:
            return TimeSeries(key)
        arr = np.asarray(rolled + rows, dtype=float)
        return TimeSeries(key, arr[:, 0], arr[:, 1])

    def query_rollup(self, component: str, metric: str,
                     start: float = float("-inf"),
                     end: float = float("inf")) -> RollupSeries:
        """Like :meth:`query` but aggregate-aware: every row carries
        (mean, min, max, count); raw points have ``count == 1``."""
        key = MetricKey(component, metric)
        row = self._conn.execute(
            "SELECT id FROM series WHERE component=? AND metric=?",
            (component, metric),
        ).fetchone()
        if row is None:
            return RollupSeries(key)
        rolled = self._conn.execute(
            "SELECT t, mean, vmin, vmax, n FROM rollups "
            "WHERE series_id=? AND t>=? AND t<=? ORDER BY t",
            (int(row[0]), float(start), float(end)),
        ).fetchall()
        rows = self._conn.execute(
            "SELECT t, v, v, v, 1 FROM points WHERE series_id=? "
            "AND t>=? AND t<=? ORDER BY rowid",
            (int(row[0]), float(start), float(end)),
        ).fetchall()
        if not rolled and not rows:
            return RollupSeries(key)
        arr = np.asarray(rolled + rows, dtype=float)
        return RollupSeries(key, arr[:, 0], arr[:, 1], arr[:, 2],
                            arr[:, 3], arr[:, 4])

    def newest_time(self, component: str, metric: str) -> float | None:
        row = self._conn.execute(
            "SELECT id FROM series WHERE component=? AND metric=?",
            (component, metric),
        ).fetchone()
        if row is None:
            return None
        newest = self._conn.execute(
            "SELECT MAX(t) FROM points WHERE series_id=?",
            (int(row[0]),),
        ).fetchone()[0]
        if newest is None:
            newest = self._conn.execute(
                "SELECT MAX(t) FROM rollups WHERE series_id=?",
                (int(row[0]),),
            ).fetchone()[0]
        return None if newest is None else float(newest)

    def keys(self) -> list[MetricKey]:
        rows = self._conn.execute(
            "SELECT component, metric FROM series ORDER BY component, metric"
        ).fetchall()
        return [MetricKey(c, m) for c, m in rows]

    def series_count(self) -> int:
        row = self._conn.execute("SELECT COUNT(*) FROM series").fetchone()
        return int(row[0])

    def sample_count(self) -> int:
        """Stored rows: raw points plus rollup buckets (a bucket
        counts once however many samples it summarizes)."""
        points = self._conn.execute(
            "SELECT COUNT(*) FROM points").fetchone()[0]
        rolled = self._conn.execute(
            "SELECT COUNT(*) FROM rollups").fetchone()[0]
        return int(points) + int(rolled)

    def disk_bytes(self) -> int:
        """On-disk footprint of the database (plus WAL sidecars)."""
        import os

        if self.path == ":memory:":
            return 0
        total = 0
        for path in (self.path, self.path + "-wal",
                     self.path + "-shm"):
            if os.path.exists(path):
                total += os.path.getsize(path)
        return total

    # -- metadata ------------------------------------------------------

    def set_metadata(self, meta: dict) -> None:
        super().set_metadata(meta)
        self._conn.execute(
            "INSERT OR REPLACE INTO meta (key, payload) VALUES ('run', ?)",
            (json.dumps(meta, sort_keys=True),),
        )
        self._conn.commit()

    def metadata(self) -> dict:
        row = self._conn.execute(
            "SELECT payload FROM meta WHERE key='run'"
        ).fetchone()
        if row is None:
            return {}
        return json.loads(row[0])

    # -- compaction ----------------------------------------------------

    def _apply_schedule(self) -> tuple[int, int, int]:
        """Migrate every series across the schedule's tiers.

        Runs in one transaction (committed by the caller), so a crash
        mid-migration rolls back to the untouched database -- never a
        half-rolled series.  Returns (points rolled, rollup buckets
        written, rows dropped past the final horizon).
        """
        schedule = self.schedule
        rolled = 0
        buckets = 0
        dropped = 0
        for (sid,) in self._conn.execute(
                "SELECT id FROM series").fetchall():
            newest = self.newest_time(
                *self._conn.execute(
                    "SELECT component, metric FROM series WHERE id=?",
                    (sid,)).fetchone())
            if newest is None:
                continue
            drop_cutoff = schedule.drop_cutoff(newest)
            if drop_cutoff is not None:
                for table in ("points", "rollups"):
                    cursor = self._conn.execute(
                        f"DELETE FROM {table} "
                        f"WHERE series_id=? AND t<?",
                        (sid, drop_cutoff),
                    )
                    dropped += cursor.rowcount
            lo = drop_cutoff if drop_cutoff is not None \
                else float("-inf")
            # Oldest (coarsest) region first; regions are disjoint.
            for cutoff, res in reversed(schedule.cutoffs(newest)):
                cutoff = max(lo, cutoff)
                prows = self._conn.execute(
                    "SELECT t, v, v, v, 1 FROM points "
                    "WHERE series_id=? AND t>=? AND t<? ORDER BY t",
                    (sid, lo, cutoff),
                ).fetchall()
                rrows = self._conn.execute(
                    "SELECT t, mean, vmin, vmax, n FROM rollups "
                    "WHERE series_id=? AND resolution<? "
                    "AND t>=? AND t<? ORDER BY t",
                    (sid, res, lo, cutoff),
                ).fetchall()
                if prows or rrows:
                    # Finer rollups are strictly older than raw points
                    # (the migration invariant), so concatenation in
                    # that order stays time-sorted.
                    arr = np.asarray(rrows + prows, dtype=float)
                    bt, bv, bmin, bmax, bn = rollup_arrays(
                        arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3],
                        arr[:, 4], resolution=res,
                    )
                    self._conn.execute(
                        "DELETE FROM points "
                        "WHERE series_id=? AND t>=? AND t<?",
                        (sid, lo, cutoff),
                    )
                    self._conn.execute(
                        "DELETE FROM rollups WHERE series_id=? "
                        "AND resolution<? AND t>=? AND t<?",
                        (sid, res, lo, cutoff),
                    )
                    self._conn.executemany(
                        "INSERT INTO rollups "
                        "(series_id, resolution, t, mean, vmin, vmax, n)"
                        " VALUES (?, ?, ?, ?, ?, ?, ?)",
                        ((sid, res, float(ti), float(vi), float(mi),
                          float(ma), int(ni))
                         for ti, vi, mi, ma, ni
                         in zip(bt, bv, bmin, bmax, bn)),
                    )
                    rolled += len(prows)
                    buckets += int(bt.size)
                lo = cutoff
        return rolled, buckets, dropped

    def trim(self, retention: float | None = None) -> dict:
        """Apply the retention schedule and horizon, then ``VACUUM``.

        With a :attr:`schedule` set, points older than each tier's
        aligned cutoff migrate into that tier's rollup buckets and
        whole buckets past a finite final horizon are dropped.  With
        ``retention`` given, every series additionally loses the rows
        older than (its *own* newest sample - ``retention``) -- the
        per-series anchor mirrors the journal's retirement semantics,
        so a quiet series never loses its only history to a global
        clock that moved on.  ``VACUUM`` then returns the freed pages
        to the filesystem (a plain DELETE only marks them reusable).
        Returns trim stats.
        """
        self.flush()
        deleted = 0
        rolled = 0
        buckets = 0
        if self.schedule is not None:
            rolled, buckets, dropped = self._apply_schedule()
            deleted += dropped
            self._conn.commit()
        if retention is not None:
            rows = self._conn.execute(
                "SELECT series_id, MAX(t) FROM points GROUP BY series_id"
            ).fetchall()
            for sid, newest in rows:
                if newest is None:
                    continue
                for table in ("points", "rollups"):
                    cursor = self._conn.execute(
                        f"DELETE FROM {table} WHERE series_id=? AND t<?",
                        (int(sid), float(newest) - retention),
                    )
                    deleted += cursor.rowcount
            self._conn.commit()
        # VACUUM must run outside any transaction (flush/commit above).
        self._conn.execute("VACUUM")
        return {"points_deleted": deleted,
                "points_rolled": rolled,
                "rollup_buckets_written": buckets}

    def compact(self, retention: float | None = None) -> dict:
        """Registry-facing alias of :meth:`trim` (the
        ``StorageBackend`` compaction protocol)."""
        return self.trim(retention)

    # -- durability ----------------------------------------------------

    def flush(self) -> None:
        self._conn.commit()
        self._uncommitted = 0

    def close(self) -> None:
        self.flush()
        self._conn.close()
