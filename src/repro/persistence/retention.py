"""Tiered retention schedules and rollup aggregation.

Long retentions at full resolution are disk-bound; real TSDBs
(Graphite, M3, VictoriaMetrics) keep a recent horizon at full
resolution and progressively coarser *rollups* beyond it.  This module
supplies the policy half of that design:

* :class:`RetentionSchedule` parses Graphite/M3-style schedule strings
  (``"1000s:full,4000s:1m,inf:10m"``: full resolution for the newest
  1000 s, one-minute rollups to 4000 s, ten-minute rollups forever)
  and turns them into aligned migration cutoffs;
* :func:`rollup_arrays` aggregates samples -- or already-rolled
  buckets -- into (mean, min, max, count) per bucket;
* :class:`RollupSeries` is what aggregate-aware queries return.

The mechanism half lives in the storage backends
(:meth:`~repro.persistence.spill.SpillBackend.compact`,
:meth:`~repro.persistence.sqlite_backend.SqliteBackend.trim`), which
apply a schedule when migrating points across tier horizons.

Two invariants make tier migration exact and idempotent:

* **Bucket alignment.**  Buckets are absolutely aligned
  (``floor(t / resolution) * resolution``; the bucket's timestamp is
  its start), and every migration cutoff is aligned *down* to the
  target tier's grid -- a bucket is either wholly migrated or wholly
  untouched, never split.
* **Nesting resolutions.**  Each tier's resolution must be an integer
  multiple of the previous tier's, so re-rolling existing buckets into
  a coarser tier (count-weighted mean, min of mins, max of maxes, sum
  of counts) recomputes exactly what a direct rollup of the raw
  samples would have produced.

Because backend writes are append-only (the out-of-order guard), every
bucket below a cutoff is sealed -- no new sample can ever land in it --
so running a migration twice rolls nothing twice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.metrics.timeseries import MetricKey

#: Sentinel resolution meaning "full resolution" (raw samples).
FULL = 0.0

_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


def parse_duration(text: str) -> float:
    """``"90s"``/``"1m"``/``"2h"``/``"1d"``/``"inf"`` -> seconds.

    A bare number is seconds.  Raises :class:`ValueError` on anything
    else (including negative or zero durations).
    """
    text = text.strip()
    if not text:
        raise ValueError("empty duration")
    if text == "inf":
        return float("inf")
    unit = 1.0
    body = text
    if text[-1] in _UNITS:
        unit = _UNITS[text[-1]]
        body = text[:-1]
    try:
        seconds = float(body) * unit
    except ValueError:
        raise ValueError(f"invalid duration {text!r}") from None
    if not seconds > 0 or math.isnan(seconds):
        raise ValueError(f"duration must be positive, got {text!r}")
    return seconds


def format_duration(seconds: float) -> str:
    """Inverse of :func:`parse_duration`: the largest unit that
    divides ``seconds`` evenly (``90.0 -> "90s"``, ``600.0 -> "10m"``,
    ``inf -> "inf"``)."""
    if math.isinf(seconds):
        return "inf"
    for suffix in ("d", "h", "m"):
        unit = _UNITS[suffix]
        if seconds >= unit and seconds % unit == 0:
            return f"{seconds / unit:g}{suffix}"
    return f"{seconds:g}s"


@dataclass(frozen=True)
class Tier:
    """One retention tier: keep data newer than ``horizon`` (seconds
    of age) at ``resolution`` (seconds per bucket; :data:`FULL` = raw
    samples)."""

    horizon: float
    resolution: float = FULL

    def format(self) -> str:
        res = "full" if self.resolution == FULL \
            else format_duration(self.resolution)
        return f"{format_duration(self.horizon)}:{res}"


@dataclass(frozen=True)
class RetentionSchedule:
    """An ordered ladder of retention tiers.

    The first tier is always full resolution (its horizon is the
    *full-resolution horizon* every consumer of raw samples -- ring
    replay, journal retirement, bit-identical resume -- must respect).
    Later tiers carry strictly increasing horizons and strictly
    increasing, mutually nesting rollup resolutions; ``inf`` as the
    last horizon keeps that tier forever, a finite one drops data
    beyond it.
    """

    tiers: tuple[Tier, ...] = field(default=())

    def __post_init__(self) -> None:
        tiers = tuple(self.tiers)
        object.__setattr__(self, "tiers", tiers)
        if not tiers:
            raise ValueError("schedule needs at least one tier")
        if tiers[0].resolution != FULL:
            raise ValueError(
                "the first tier must be full resolution "
                "(e.g. '1000s:full'); a schedule that keeps no raw "
                "samples cannot serve the hot horizon"
            )
        for index, tier in enumerate(tiers):
            if not tier.horizon > 0:
                raise ValueError(
                    f"tier {tier.format()!r}: horizon must be positive"
                )
            if math.isinf(tier.horizon) and index != len(tiers) - 1:
                raise ValueError(
                    "'inf' is only valid as the last tier's horizon"
                )
            if index == 0:
                continue
            previous = tiers[index - 1]
            if tier.resolution == FULL:
                raise ValueError(
                    f"tier {tier.format()!r}: only the first tier may "
                    "be full resolution"
                )
            if math.isinf(tier.resolution):
                raise ValueError(
                    f"tier {tier.format()!r}: resolution must be finite"
                )
            if tier.horizon <= previous.horizon:
                raise ValueError(
                    f"tier horizons must be strictly increasing "
                    f"({tier.format()!r} does not extend "
                    f"{previous.format()!r})"
                )
            if tier.resolution <= previous.resolution:
                raise ValueError(
                    f"tier resolutions must be strictly increasing "
                    f"({tier.format()!r} does not coarsen "
                    f"{previous.format()!r})"
                )
            if previous.resolution != FULL \
                    and tier.resolution % previous.resolution != 0:
                raise ValueError(
                    f"tier resolution {format_duration(tier.resolution)} "
                    f"must be an integer multiple of "
                    f"{format_duration(previous.resolution)} so rollups "
                    "re-roll exactly"
                )
            if not math.isinf(tier.horizon) \
                    and tier.horizon - previous.horizon < tier.resolution:
                raise ValueError(
                    f"tier {tier.format()!r} spans less than one of its "
                    "own buckets"
                )

    @classmethod
    def parse(cls, text: str) -> "RetentionSchedule":
        """Parse ``"1000s:full,4000s:1m,inf:10m"``."""
        parts = [part.strip() for part in str(text).split(",")]
        tiers = []
        for part in parts:
            if not part:
                raise ValueError(
                    f"empty tier in schedule {text!r}"
                )
            if ":" not in part:
                raise ValueError(
                    f"tier {part!r} must be 'horizon:resolution' "
                    "(e.g. '1000s:full' or 'inf:10m')"
                )
            horizon_text, _, res_text = part.partition(":")
            horizon = parse_duration(horizon_text)
            resolution = FULL if res_text.strip() == "full" \
                else parse_duration(res_text)
            tiers.append(Tier(horizon, resolution))
        return cls(tuple(tiers))

    def format(self) -> str:
        """The canonical schedule string (round-trips through
        :meth:`parse`)."""
        return ",".join(tier.format() for tier in self.tiers)

    @property
    def full_horizon(self) -> float:
        """Seconds of age the schedule keeps at full resolution.

        Everything that needs raw samples -- ring replay after resume,
        write-ahead journal retirement -- must anchor on this, never
        on a coarser tier's horizon.
        """
        return self.tiers[0].horizon

    @property
    def final_horizon(self) -> float:
        """The oldest age retained at all (``inf`` = keep forever)."""
        return self.tiers[-1].horizon

    def cutoffs(self, newest: float) -> list[tuple[float, float]]:
        """Aligned migration cutoffs for a series whose newest sample
        is at ``newest``, finest tier first.

        Returns ``[(cutoff, resolution), ...]`` for every rollup tier:
        samples older than ``cutoff`` must be stored at least that
        coarsely.  Each cutoff is aligned down to its tier's bucket
        grid (buckets are never split) and the chain is monotone
        non-increasing, so tier regions nest cleanly.
        """
        out: list[tuple[float, float]] = []
        bound = float("inf")
        for index in range(1, len(self.tiers)):
            res = self.tiers[index].resolution
            raw = newest - self.tiers[index - 1].horizon
            cutoff = math.floor(min(raw, bound) / res) * res
            out.append((cutoff, res))
            bound = cutoff
        return out

    def drop_cutoff(self, newest: float) -> float | None:
        """Samples older than this are dropped outright (None = the
        last tier keeps forever).  Aligned to the last tier's grid so
        only whole buckets disappear."""
        last = self.tiers[-1]
        if math.isinf(last.horizon):
            return None
        raw = newest - last.horizon
        if last.resolution == FULL:
            return raw
        cut = math.floor(raw / last.resolution) * last.resolution
        cuts = self.cutoffs(newest)
        return min(cut, cuts[-1][0]) if cuts else cut


@dataclass(frozen=True)
class RollupSeries:
    """Aggregate-aware query result: one row per stored bucket (raw
    samples appear as single-sample buckets with ``count == 1`` and
    ``min == mean == max``).  ``times`` are bucket starts."""

    key: MetricKey
    times: np.ndarray = field(default_factory=lambda: np.empty(0))
    means: np.ndarray = field(default_factory=lambda: np.empty(0))
    mins: np.ndarray = field(default_factory=lambda: np.empty(0))
    maxs: np.ndarray = field(default_factory=lambda: np.empty(0))
    counts: np.ndarray = field(default_factory=lambda: np.empty(0))

    def __len__(self) -> int:
        return int(self.times.size)

    def total_samples(self) -> int:
        """Raw samples represented by this series (``sum(counts)``)."""
        return int(self.counts.sum())


def rollup_arrays(
    times: np.ndarray,
    means: np.ndarray,
    mins: np.ndarray | None = None,
    maxs: np.ndarray | None = None,
    counts: np.ndarray | None = None,
    *,
    resolution: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Aggregate time-sorted rows into ``resolution``-wide buckets.

    Rows are raw samples when ``mins``/``maxs``/``counts`` are omitted,
    or already-rolled buckets (count-weighted re-roll) when given.
    Returns ``(times, means, mins, maxs, counts)`` with one row per
    non-empty bucket; bucket timestamps are the aligned bucket starts.
    Re-bucketing rows already on the target grid is the identity.
    """
    if not resolution > 0:
        raise ValueError("rollup resolution must be positive")
    t = np.asarray(times, dtype=float).reshape(-1)
    v = np.asarray(means, dtype=float).reshape(-1)
    if not t.size:
        empty = np.empty(0)
        return empty, empty.copy(), empty.copy(), empty.copy(), \
            empty.copy()
    lo = np.asarray(mins, dtype=float).reshape(-1) \
        if mins is not None else v
    hi = np.asarray(maxs, dtype=float).reshape(-1) \
        if maxs is not None else v
    n = np.asarray(counts, dtype=float).reshape(-1) \
        if counts is not None else np.ones(t.size)
    if not (t.size == v.size == lo.size == hi.size == n.size):
        raise ValueError("rollup arrays must have equal length")
    buckets = np.floor(t / resolution) * resolution
    starts = np.flatnonzero(np.r_[True, np.diff(buckets) != 0])
    bucket_n = np.add.reduceat(n, starts)
    bucket_mean = np.add.reduceat(v * n, starts) / bucket_n
    # A bucket fed by exactly one source row keeps its mean verbatim:
    # ``(v * n) / n`` can wobble an ulp for odd counts, and identity
    # re-bucketing must be bit-exact for compaction to be idempotent.
    single = np.diff(np.r_[starts, t.size]) == 1
    bucket_mean[single] = v[starts[single]]
    return (
        buckets[starts],
        bucket_mean,
        np.minimum.reduceat(lo, starts),
        np.maximum.reduceat(hi, starts),
        bucket_n,
    )
