"""Checkpoint/restore of streaming analysis state.

A checkpoint freezes everything the :class:`StreamingSieve` derived
from the stream so far -- the previous window's clusterings and
dependency graph (the incremental-reuse state), the drift detector's
frozen per-component baselines, the hop schedule and the lifetime
counters -- as one JSON document per window epoch.  Raw samples are
deliberately *not* part of it: they are replayed from the write-ahead
ingest journal (:mod:`repro.persistence.journal`), whose deterministic
re-ingestion rebuilds the window-store rings bit-identically.

``restore_engine`` composes the two: fresh engine, journal replay,
checkpoint applied on top.  A restarted engine then continues
incrementally -- same reuse decisions, same drift scores, same Granger
re-tests -- instead of re-clustering the world from scratch, and (as
the crash-restart tests assert) produces exactly the windows an
uninterrupted run would have produced.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import time
from pathlib import Path

import numpy as np

from repro.core.config import StreamingConfig
from repro.core.serialize import (
    clustering_from_dict,
    clustering_to_dict,
    graph_from_dict,
    graph_to_dict,
)
from repro.metrics.timeseries import MetricFrame
from repro.persistence.journal import replay_journal
from repro.streaming.analyzer import StreamingStats, WindowAnalysis
from repro.streaming.drift import MetricBaseline
from repro.streaming.engine import StreamingSieve
from repro.tracing.callgraph import CallGraph

CHECKPOINT_VERSION = 1

#: Config fields a restore validates against the checkpoint -- the ones
#: that change what the replayed rings and hop schedule look like.
_CONFIG_FINGERPRINT = ("window", "hop", "retention",
                       "max_points_per_series", "min_window_samples",
                       "full_refresh_windows", "adaptive_hop",
                       "hop_min", "hop_max")


def checkpoint_state(engine: StreamingSieve,
                     spec: dict | None = None) -> dict:
    """The engine's analysis state as a JSON-compatible dict.

    ``spec`` (a resolved :meth:`repro.api.spec.RunSpec.to_dict`
    payload) is embedded verbatim when given, so a later ``--resume``
    can revalidate that it continues the *same declared run* -- not
    just the same window geometry."""
    previous = engine.analyzer.previous
    prev_payload = None
    if previous is not None:
        prev_payload = {
            "index": previous.index,
            "start": previous.start,
            "end": previous.end,
            "reclustered": list(previous.reclustered),
            "reused": list(previous.reused),
            "reasons": dict(previous.recluster_reasons),
            "edges_retested": previous.edges_retested,
            "edges_reused": previous.edges_reused,
            "clusterings": {
                component: clustering_to_dict(clustering)
                for component, clustering in previous.clusterings.items()
            },
            "graph": graph_to_dict(previous.dependency_graph),
        }
    drift_payload = {}
    for component, clustering, metrics, coherence \
            in engine.drift.baseline_items():
        drift_payload[component] = {
            "clustering": clustering_to_dict(clustering),
            "metrics": {
                name: dataclasses.asdict(baseline)
                for name, baseline in metrics.items()
            },
            "coherence": {str(index): value
                          for index, value in coherence.items()},
        }
    config = engine.config
    state = {
        "version": CHECKPOINT_VERSION,
        "seed": engine.seed,
        "application": engine.application,
        "workload": engine.workload,
        "config": {name: getattr(config, name)
                   for name in _CONFIG_FINGERPRINT},
        "next_analysis": engine._next_analysis,
        "last_offer": engine.last_offer,
        "current_hop": engine.current_hop,
        "skipped_windows": engine.skipped_windows,
        "windows_since_refresh": engine.analyzer.windows_since_refresh,
        "stats": dataclasses.asdict(engine.stats),
        "previous": prev_payload,
        "drift": drift_payload,
    }
    if spec is not None:
        state["spec"] = spec
    return state


def save_checkpoint(engine: StreamingSieve, path,
                    spec: dict | None = None) -> dict:
    """Atomically write the engine's checkpoint to ``path``.

    Returns the state dict that was written.  The write goes through a
    temp file + rename, so a crash mid-checkpoint leaves the previous
    checkpoint intact.  ``spec`` is embedded as on
    :func:`checkpoint_state`.
    """
    state = checkpoint_state(engine, spec=spec)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(state, handle, sort_keys=True)
    os.replace(tmp, path)
    return state


def load_checkpoint(path) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        state = json.load(handle)
    if state.get("version") != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {state.get('version')!r} "
            f"(expected {CHECKPOINT_VERSION})"
        )
    return state


def _restore_previous(state: dict) -> WindowAnalysis | None:
    payload = state["previous"]
    if payload is None:
        return None
    clusterings = {
        component: clustering_from_dict(component, data)
        for component, data in payload["clusterings"].items()
    }
    return WindowAnalysis(
        index=int(payload["index"]),
        start=float(payload["start"]),
        end=float(payload["end"]),
        # Raw samples are not checkpointed; the analyzer only reads
        # clusterings and the graph from its previous analysis.
        frame=MetricFrame(),
        call_graph=CallGraph(),
        clusterings=clusterings,
        dependency_graph=graph_from_dict(payload["graph"]),
        reclustered=list(payload["reclustered"]),
        reused=list(payload["reused"]),
        recluster_reasons=dict(payload["reasons"]),
        drift_readings={},
        edges_retested=int(payload["edges_retested"]),
        edges_reused=int(payload["edges_reused"]),
        application=state["application"],
        workload=state["workload"],
        seed=int(state["seed"]),
    )


def restore_engine(checkpoint, config: StreamingConfig,
                   journal_path=None, bus=None,
                   store_backend=None, journal=None,
                   telemetry=None) -> StreamingSieve:
    """Rebuild a streaming engine from checkpoint + ingest journal.

    ``checkpoint`` is a path or an already-loaded state dict.
    ``config`` must match the checkpointed run on every fingerprinted
    field (window geometry, retention, refresh cadence) -- a mismatch
    would make the replayed schedule diverge, so it raises.
    ``journal_path`` replays the recorded ingest stream to rebuild the
    window-store rings; ``journal``/``store_backend``/``bus`` wire the
    *resumed* run's fresh persistence, exactly as on
    :class:`StreamingSieve` itself.  ``telemetry``
    (:class:`repro.obs.Telemetry`) travels to the rebuilt engine; the
    restore itself lands in the ``repro_restore_seconds`` gauge.
    """
    restore_started = time.perf_counter()
    state = checkpoint if isinstance(checkpoint, dict) \
        else load_checkpoint(checkpoint)
    defaults = StreamingConfig()
    for name in _CONFIG_FINGERPRINT:
        # Older checkpoints predate some fingerprint fields (e.g. the
        # adaptive-hop bounds); absent keys compare against defaults.
        recorded = state["config"].get(name, getattr(defaults, name))
        if getattr(config, name) != recorded:
            raise ValueError(
                f"checkpoint/config mismatch on {name!r}: "
                f"{recorded!r} != {getattr(config, name)!r}"
            )
    engine = StreamingSieve(
        config=config,
        seed=int(state["seed"]),
        bus=bus,
        application=state["application"],
        workload=state["workload"],
        store_backend=store_backend,
        journal=journal,
        telemetry=telemetry,
    )

    if journal_path is not None:
        # Replay rebuilds the rings with the durable backend detached;
        # the backend is then teed *manually* with only the suffix it
        # is missing.  (Re-writing already-stored batches would trip
        # the backend's out-of-order guard, but a crash between the
        # journal append and sink delivery can equally leave the
        # backend short of the journal's tail -- the suffix write
        # heals that hole.)
        backend, engine.windows.backend = engine.windows.backend, None
        newest: dict[tuple[str, str], float] = {}
        try:
            for component, metric, times, values \
                    in replay_journal(journal_path):
                engine.windows.ingest(component, metric, times, values)
                if not times.size:
                    continue
                key = (component, metric)
                last = newest.get(key)
                if last is None:
                    stored = None if backend is None \
                        else backend.newest_time(component, metric)
                    last = float("-inf") if stored is None \
                        else float(stored)
                if backend is not None:
                    keep = int(np.searchsorted(times, last,
                                               side="right"))
                    if keep < times.size:
                        backend.write(component, metric,
                                      times[keep:], values[keep:])
                newest[key] = max(last, float(times[-1]))
        finally:
            engine.windows.backend = backend
        if newest:
            # The resumed driver re-publishes the horizon's (possibly
            # partially journaled) scrape cycle; the bus clip keeps
            # the already-journaled half from being journaled,
            # delivered and replayed a second time.
            engine.bus.arm_resume_clip(
                {key: last for key, last in newest.items()
                 if last != float("-inf")}
            )

    previous = _restore_previous(state)
    engine.analyzer.restore(previous,
                            int(state["windows_since_refresh"]))
    for component, payload in state["drift"].items():
        clustering = clustering_from_dict(component,
                                          payload["clustering"])
        metrics = {
            name: MetricBaseline(**baseline)
            for name, baseline in payload["metrics"].items()
        }
        coherence = {int(index): float(value)
                     for index, value in payload["coherence"].items()}
        engine.drift.set_baseline(component, clustering, metrics,
                                  coherence)
    engine._next_analysis = state["next_analysis"]
    engine.last_offer = state.get("last_offer")
    engine.current_hop = float(state.get("current_hop")
                               or config.hop)
    engine.skipped_windows = int(state["skipped_windows"])
    engine.stats = StreamingStats(**state["stats"])
    if previous is not None:
        engine.history.append(previous)
    engine.telemetry.registry.gauge(
        "repro_restore_seconds",
        "Wall time of the last checkpoint + journal restore",
    ).set(time.perf_counter() - restore_started)
    return engine


class CheckpointPolicy:
    """Engine consumer that checkpoints every N analyzed windows.

    Subscribe it to a :class:`StreamingSieve`; with
    ``every=None`` the cadence comes from
    :attr:`repro.core.config.StreamingConfig.checkpoint_every_windows`
    (0 disables automatic checkpoints entirely).

    Each checkpoint epoch also bounds the durable state around it:

    * the window store's backend is flushed *before* the checkpoint
      lands (an asynchronous :class:`repro.parallel.writer
      .BatchingWriter` drains its queue here), so every sample the
      checkpoint covers is on disk -- the un-durable window is at most
      one epoch;
    * the write-ahead ingest journal is rotated *after* it, and
      segments older than the retention horizon are retired -- a
      checkpoint plus the retained window makes them redundant for
      restart, so the journal stops growing unboundedly.  Disable via
      :attr:`~repro.core.config.StreamingConfig
      .journal_rotate_on_checkpoint` (or ``rotate_journal=False``) to
      keep the full history, e.g. for offline replay of a whole run.
    """

    def __init__(self, engine: StreamingSieve, path,
                 every: int | None = None,
                 rotate_journal: bool | None = None,
                 spec: dict | None = None,
                 retire_horizon: float | None = None):
        """``spec`` (a resolved run-spec dict) is embedded in every
        checkpoint this policy writes, so resumes revalidate against
        the declared run.  ``retire_horizon`` overrides the journal
        retirement anchor (default: the engine's ring retention); with
        a tiered-retention store it must cover the schedule's
        *full-resolution* horizon -- replay rebuilds raw samples, and
        rollups cannot stand in for them.  ``inf`` disables retirement
        entirely (the journal keeps the whole run).
        """
        self.engine = engine
        self.spec = spec
        self.retire_horizon = engine.config.retention \
            if retire_horizon is None else float(retire_horizon)
        if self.retire_horizon < engine.config.retention:
            raise ValueError(
                "retire_horizon must cover the ring retention "
                f"({self.retire_horizon:g} < "
                f"{engine.config.retention:g}): replay could not "
                "rebuild the rings"
            )
        self.path = Path(path)
        self.every = engine.config.checkpoint_every_windows \
            if every is None else every
        if self.every < 0:
            raise ValueError("checkpoint cadence must be >= 0")
        self.rotate_journal = \
            engine.config.journal_rotate_on_checkpoint \
            if rotate_journal is None else rotate_journal
        self.checkpoints_written = 0
        self._windows_seen = 0
        self._last_checkpoint_window = 0
        self.on_checkpoint = None
        """Optional ``callback(analysis, policy)`` fired after each
        checkpoint lands (the operations event log hooks in here)."""
        self._save_seconds = engine.telemetry.registry.histogram(
            "repro_checkpoint_save_seconds",
            "Wall time of one checkpoint save (incl. journal rotation)",
        )

    @property
    def windows_since_checkpoint(self) -> int:
        """Analyzed windows since the last checkpoint landed (the
        durability lag a health probe judges)."""
        return self._windows_seen - self._last_checkpoint_window

    def on_window(self, analysis) -> None:
        self._windows_seen += 1
        if not self.every or self._windows_seen % self.every:
            return
        tracer = self.engine.telemetry.tracer
        # Flush-on-checkpoint: the checkpoint must never describe
        # samples the durable store has not absorbed yet.
        with tracer.span("writer_flush"):
            self.engine.windows.flush_backend()
        with tracer.span("checkpoint") as span:
            save_checkpoint(self.engine, self.path, spec=self.spec)
            self.checkpoints_written += 1
            self._last_checkpoint_window = self._windows_seen
            journal = self.engine.bus.journal
            if journal is not None and self.rotate_journal \
                    and hasattr(journal, "rotate"):
                journal.rotate()
                # Anchor retirement at the stalest series, not the
                # global clock: a quiet series' ring keeps samples to
                # its own newest minus retention, and replay must
                # still rebuild them.  The horizon is the *full
                # resolution* one: under a tiered-retention schedule
                # the durable store keeps raw samples that far back,
                # and only the journal can re-create them.
                stalest = self.engine.windows.stalest_series_time()
                if stalest is not None \
                        and not math.isinf(self.retire_horizon):
                    journal.retire(stalest - self.retire_horizon)
        self._save_seconds.observe(span.elapsed)
        if self.on_checkpoint is not None:
            self.on_checkpoint(analysis, self)
