"""Hot/cold tiered storage: numpy rings in RAM, segments on disk.

Long retentions do not fit in memory; the spill backend keeps the most
recent ``hot_points`` samples of every series in plain numpy buffers
and, whenever a hot buffer fills, freezes it into an immutable on-disk
*segment* (``.npz``, or parquet when pyarrow is installed).  An
``index.json`` in the backend directory records every segment's key,
time span and sample count, so a range query touches only the segments
that overlap the window -- and so a fresh process can re-open a
recorded directory and serve the same queries without re-ingesting
anything.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.metrics.timeseries import MetricKey, TimeSeries
from repro.persistence.backend import BackendBase, as_arrays
from repro.persistence.retention import (
    RetentionSchedule,
    RollupSeries,
    rollup_arrays,
)

try:  # pragma: no cover - exercised only where pyarrow is installed
    import pyarrow  # noqa: F401
    import pyarrow.parquet  # noqa: F401
    HAVE_PARQUET = True
except ImportError:  # the container image ships numpy only
    HAVE_PARQUET = False

INDEX_NAME = "index.json"
INDEX_VERSION = 1


class Segment:
    """One immutable cold run of rows of one series.

    ``resolution`` 0.0 means raw samples; positive means rollup
    buckets that wide (``n`` then counts stored *rows*, not the raw
    samples they summarize).  Indexes written before tiered retention
    existed simply have no ``resolution`` key and load as raw.
    """

    __slots__ = ("file", "start", "end", "n", "resolution")

    def __init__(self, file: str, start: float, end: float, n: int,
                 resolution: float = 0.0):
        self.file = file
        self.start = start
        self.end = end
        self.n = n
        self.resolution = resolution

    def as_dict(self) -> dict:
        out = {"file": self.file, "start": self.start,
               "end": self.end, "n": self.n}
        if self.resolution:
            out["resolution"] = self.resolution
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Segment":
        return cls(data["file"], float(data["start"]),
                   float(data["end"]), int(data["n"]),
                   float(data.get("resolution", 0.0)))


class _HotBuffer:
    """The in-RAM tail of one series: a list of appended chunks."""

    __slots__ = ("chunks", "n", "last_time")

    def __init__(self) -> None:
        self.chunks: list[tuple[np.ndarray, np.ndarray]] = []
        self.n = 0
        self.last_time = float("-inf")

    def append(self, t: np.ndarray, v: np.ndarray) -> None:
        self.chunks.append((t, v))
        self.n += int(t.size)
        self.last_time = float(t[-1])

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        if not self.chunks:
            return np.empty(0), np.empty(0)
        return (np.concatenate([c[0] for c in self.chunks]),
                np.concatenate([c[1] for c in self.chunks]))

    def clear(self) -> None:
        self.chunks.clear()
        self.n = 0


def _write_segment(path: Path, arrays: dict, fmt: str) -> None:
    """Persist one segment's column arrays (raw: ``t``/``v``; rollup
    additionally ``vmin``/``vmax``/``n``)."""
    if fmt == "npz":
        np.savez_compressed(path, **arrays)
    else:  # pragma: no cover - parquet path needs pyarrow
        table = pyarrow.table(arrays)
        pyarrow.parquet.write_table(table, path)


def _read_segment(path: Path, fmt: str) -> dict:
    if fmt == "npz":
        with np.load(path) as data:
            return {name: data[name] for name in data.files}
    table = pyarrow.parquet.read_table(path)  # pragma: no cover
    return {name: table[name].to_numpy()  # pragma: no cover
            for name in table.column_names}


def _as_rollup_columns(data: dict) -> tuple[np.ndarray, ...]:
    """A segment's columns as ``(t, mean, min, max, count)``, expanding
    raw samples to single-sample buckets."""
    t, v = data["t"], data["v"]
    return (t, v, data.get("vmin", v), data.get("vmax", v),
            data.get("n", np.ones(t.size)))


class SpillBackend(BackendBase):
    """Bounded-RAM storage backend with on-disk cold segments."""

    def __init__(self, directory, hot_points: int = 2048,
                 segment_format: str = "npz",
                 compact_min_points: int = 0,
                 schedule: str | RetentionSchedule | None = None):
        if hot_points < 8:
            raise ValueError("hot_points must be >= 8")
        if segment_format not in ("npz", "parquet"):
            raise ValueError(f"unknown segment format {segment_format!r}")
        if segment_format == "parquet" and not HAVE_PARQUET:
            raise RuntimeError(
                "parquet segments need pyarrow, which is not installed; "
                "use segment_format='npz'"
            )
        if compact_min_points < 0:
            raise ValueError("compact_min_points must be >= 0")
        super().__init__()
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hot_points = hot_points
        self.compact_min_points = compact_min_points or hot_points
        """Segments smaller than this are merge candidates for
        :meth:`compact` (default: a full hot buffer's worth).  Small
        segments accumulate from partial tails spilled at every
        :meth:`close`, so a long-lived recorded directory fragments
        over restart cycles until compaction merges them."""
        self.segment_format = segment_format
        if isinstance(schedule, str):
            schedule = RetentionSchedule.parse(schedule) \
                if schedule else None
        self.schedule = schedule
        """Tiered-retention policy :meth:`compact` applies (None keeps
        every segment at full resolution).  Policy, not data: a
        reopened directory rolls further only if its new backend is
        constructed with a schedule again."""
        self._hot: dict[MetricKey, _HotBuffer] = {}
        self._segments: dict[MetricKey, list[Segment]] = {}
        self._next_segment = 0
        self.spills = 0
        index_path = self.directory / INDEX_NAME
        if index_path.exists():
            self._load_index(index_path)

    # -- index ---------------------------------------------------------

    def _load_index(self, path: Path) -> None:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if data.get("version") != INDEX_VERSION:
            raise ValueError(
                f"unsupported spill index version {data.get('version')!r}"
            )
        self.segment_format = data.get("segment_format", "npz")
        if self.segment_format == "parquet" and not HAVE_PARQUET:
            # The ctor guard only saw the (default) argument; a
            # recorded directory brings its own format and must fail
            # here, not with a NameError at the first segment read.
            raise RuntimeError(
                "this spill directory uses parquet segments but "
                "pyarrow is not installed"
            )
        self._meta = dict(data.get("meta", {}))
        for entry in data["series"]:
            key = MetricKey(entry["component"], entry["metric"])
            segments = [Segment.from_dict(s)
                        for s in entry["segments"]]
            self._segments[key] = segments
            if segments:
                # Re-arm the out-of-order guard at the newest cold
                # sample, so a reopened backend rejects writes that
                # would land behind its existing segments (queries
                # assume globally time-ordered concatenation).
                buffer = _HotBuffer()
                buffer.last_time = segments[-1].end
                self._hot[key] = buffer
        self._next_segment = int(data.get("next_segment", 0))

    def _index_dict(self) -> dict:
        return {
            "version": INDEX_VERSION,
            "segment_format": self.segment_format,
            "next_segment": self._next_segment,
            "meta": self._meta,
            "series": [
                {
                    "component": key.component,
                    "metric": key.metric,
                    "segments": [s.as_dict() for s in segments],
                }
                for key, segments in sorted(self._segments.items())
            ],
        }

    def _write_index(self) -> None:
        path = self.directory / INDEX_NAME
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self._index_dict(), handle, indent=1, sort_keys=True)
        os.replace(tmp, path)

    # -- write path ----------------------------------------------------

    def write(self, component: str, metric: str, times, values) -> int:
        t, v = as_arrays(times, values)
        if not t.size:
            return 0
        key = MetricKey(component, metric)
        hot = self._hot.setdefault(key, _HotBuffer())
        if t[0] < hot.last_time:
            raise ValueError(
                f"out-of-order spill write at t={t[0]} for {key}"
            )
        hot.append(t, v)
        if hot.n >= self.hot_points:
            self._spill(key, hot)
        return int(t.size)

    def _spill(self, key: MetricKey, hot: _HotBuffer) -> None:
        t, v = hot.arrays()
        suffix = "npz" if self.segment_format == "npz" else "parquet"
        name = f"seg-{self._next_segment:06d}.{suffix}"
        self._next_segment += 1
        _write_segment(self.directory / name, {"t": t, "v": v},
                       self.segment_format)
        self._segments.setdefault(key, []).append(
            Segment(name, float(t[0]), float(t[-1]), int(t.size))
        )
        hot.clear()
        self.spills += 1

    # -- read path -----------------------------------------------------

    def _series_arrays(self, key: MetricKey, start: float,
                       end: float) -> tuple[np.ndarray, np.ndarray]:
        parts_t: list[np.ndarray] = []
        parts_v: list[np.ndarray] = []
        for segment in self._segments.get(key, ()):
            if segment.end < start or segment.start > end:
                continue
            data = _read_segment(self.directory / segment.file,
                                 self.segment_format)
            parts_t.append(data["t"])
            parts_v.append(data["v"])
        hot = self._hot.get(key)
        if hot is not None and hot.n:
            t, v = hot.arrays()
            parts_t.append(t)
            parts_v.append(v)
        if not parts_t:
            return np.empty(0), np.empty(0)
        t = np.concatenate(parts_t)
        v = np.concatenate(parts_v)
        lo = int(np.searchsorted(t, start, side="left"))
        hi = int(np.searchsorted(t, end, side="right"))
        return t[lo:hi], v[lo:hi]

    def query(self, component: str, metric: str,
              start: float = float("-inf"),
              end: float = float("inf")) -> TimeSeries:
        """Samples in range; inside the full-resolution horizon these
        are the raw writes, beyond it each rollup bucket appears as
        one sample (bucket start, bucket mean)."""
        key = MetricKey(component, metric)
        t, v = self._series_arrays(key, start, end)
        return TimeSeries(key, t, v)

    def query_rollup(self, component: str, metric: str,
                     start: float = float("-inf"),
                     end: float = float("inf")) -> RollupSeries:
        """Like :meth:`query` but aggregate-aware: every row carries
        (mean, min, max, count); raw samples have ``count == 1``."""
        key = MetricKey(component, metric)
        parts: list[tuple[np.ndarray, ...]] = []
        for segment in self._segments.get(key, ()):
            if segment.end < start or segment.start > end:
                continue
            data = _read_segment(self.directory / segment.file,
                                 self.segment_format)
            parts.append(_as_rollup_columns(data))
        hot = self._hot.get(key)
        if hot is not None and hot.n:
            t, v = hot.arrays()
            parts.append((t, v, v, v, np.ones(t.size)))
        if not parts:
            return RollupSeries(key)
        columns = [np.concatenate([p[i] for p in parts])
                   for i in range(5)]
        lo = int(np.searchsorted(columns[0], start, side="left"))
        hi = int(np.searchsorted(columns[0], end, side="right"))
        return RollupSeries(key, *(c[lo:hi] for c in columns))

    def disk_bytes(self) -> int:
        """On-disk footprint: every indexed segment plus the index."""
        total = 0
        for segments in self._segments.values():
            for segment in segments:
                path = self.directory / segment.file
                if path.exists():
                    total += path.stat().st_size
        index = self.directory / INDEX_NAME
        if index.exists():
            total += index.stat().st_size
        return total

    def keys(self) -> list[MetricKey]:
        known = set(self._segments) | {
            key for key, hot in self._hot.items() if hot.n
        }
        return sorted(known)

    def newest_time(self, component: str, metric: str) -> float | None:
        key = MetricKey(component, metric)
        hot = self._hot.get(key)
        # ``last_time`` survives spills and reopen re-arming, so it is
        # the newest sample whenever any write was seen or indexed.
        if hot is not None and hot.last_time != float("-inf"):
            return float(hot.last_time)
        segments = self._segments.get(key)
        return float(segments[-1].end) if segments else None

    def sample_count(self) -> int:
        cold = sum(segment.n for segments in self._segments.values()
                   for segment in segments)
        hot = sum(buffer.n for buffer in self._hot.values())
        return cold + hot

    def hot_sample_count(self) -> int:
        """Samples currently held in RAM (the spill pressure gauge)."""
        return sum(buffer.n for buffer in self._hot.values())

    # -- compaction ----------------------------------------------------

    def _new_segment_name(self) -> str:
        suffix = "npz" if self.segment_format == "npz" else "parquet"
        name = f"seg-{self._next_segment:06d}.{suffix}"
        self._next_segment += 1
        return name

    def _roll_series(self, key: MetricKey, segments: list[Segment],
                     removed_files: list[str],
                     stats: dict) -> list[Segment]:
        """Migrate one series' segments across the schedule's tiers.

        Segments whose oldest row is due at a coarser resolution (or
        past the final horizon) are pooled, re-bucketed per tier
        region and rewritten as one segment per region; everything
        else is untouched.  Alignment + append-only writes seal every
        bucket below a cutoff, so running this twice rolls nothing
        twice.
        """
        newest = self.newest_time(key.component, key.metric)
        if newest is None or not segments:
            return segments
        schedule = self.schedule
        cuts = schedule.cutoffs(newest)
        drop_cutoff = schedule.drop_cutoff(newest)

        def _target(start: float) -> float:
            resolution = 0.0
            for cutoff, res in cuts:
                if start < cutoff:
                    resolution = res
            return resolution

        affected: list[Segment] = []
        keep: list[Segment] = []
        for segment in segments:
            due = (drop_cutoff is not None
                   and segment.start < drop_cutoff) \
                or _target(segment.start) > segment.resolution
            (affected if due else keep).append(segment)
        if not affected:
            return segments
        parts = [
            _as_rollup_columns(
                _read_segment(self.directory / s.file,
                              self.segment_format))
            for s in affected
        ]
        t, v, vmin, vmax, n = (
            np.concatenate([p[i] for p in parts]) for i in range(5)
        )
        if drop_cutoff is not None:
            lo = int(np.searchsorted(t, drop_cutoff, side="left"))
            stats["samples_dropped"] += int(n[:lo].sum())
            t, v, vmin, vmax, n = (a[lo:] for a in (t, v, vmin,
                                                    vmax, n))
        new_segments: list[Segment] = []

        def _emit(arrays: dict, resolution: float) -> None:
            name = self._new_segment_name()
            _write_segment(self.directory / name, arrays,
                           self.segment_format)
            ts = arrays["t"]
            new_segments.append(
                Segment(name, float(ts[0]), float(ts[-1]),
                        int(ts.size), resolution)
            )

        lo = 0
        for cutoff, res in reversed(cuts):  # oldest region first
            hi = int(np.searchsorted(t, cutoff, side="left"))
            if hi > lo:
                bt, bv, bmin, bmax, bn = rollup_arrays(
                    t[lo:hi], v[lo:hi], vmin[lo:hi], vmax[lo:hi],
                    n[lo:hi], resolution=res,
                )
                _emit({"t": bt, "v": bv, "vmin": bmin, "vmax": bmax,
                       "n": bn}, res)
                stats["samples_rolled"] += int(n[lo:hi].sum())
                stats["rollup_segments_written"] += 1
            lo = max(lo, hi)
        if lo < t.size:
            # Straddler remainder inside the full-resolution horizon.
            # The nesting invariant keeps rollup rows strictly older
            # than every raw row, so this tail is raw samples -- but a
            # corrupted directory must degrade, not mis-file
            # aggregates as samples.
            if np.all(n[lo:] == 1):
                _emit({"t": t[lo:], "v": v[lo:]}, 0.0)
            else:  # pragma: no cover - unreachable via public writes
                _emit({"t": t[lo:], "v": v[lo:], "vmin": vmin[lo:],
                       "vmax": vmax[lo:], "n": n[lo:]},
                      max(s.resolution for s in affected))
        stats["segments_rolled"] += len(affected)
        removed_files.extend(s.file for s in affected)
        return sorted(keep + new_segments,
                      key=lambda s: (s.start, s.end))

    def compact(self, retention: float | None = None) -> dict:
        """Drop, roll and merge cold segments.

        Up to three passes per series, mirroring the journal's
        retirement semantics:

        * **retention** -- with ``retention`` given, segments wholly
          older than (that series' newest sample - ``retention``) are
          dropped.  The anchor is per-series, so a series that went
          quiet never loses its only replayable history to a global
          clock that moved on without it.
        * **schedule** -- with a :attr:`schedule` set, rows older than
          each tier's aligned cutoff are re-bucketed to that tier's
          resolution (mean/min/max/count per bucket) and rows past a
          finite final horizon are dropped; reads keep serving full
          resolution inside the schedule's full horizon.
        * **merge** -- consecutive same-resolution runs of segments
          smaller than :attr:`compact_min_points` are rewritten as one
          segment, so a directory fragmented by many record/reopen
          cycles stops paying per-segment open cost on every range
          query.

        The rewritten index lands atomically before any source file is
        unlinked; a crash mid-compaction leaves at worst orphaned
        segment files that a later compaction run ignores.  Returns
        compaction stats.
        """
        stats = {
            "segments_dropped": 0,
            "samples_dropped": 0,
            "segments_merged": 0,
            "segments_written": 0,
            "segments_rolled": 0,
            "samples_rolled": 0,
            "rollup_segments_written": 0,
        }
        removed_files: list[str] = []
        if self.schedule is not None or retention is not None:
            # Migration passes are defined over the whole durable
            # history: spill hot tails first so a run that just ended
            # (its newest rows still in RAM) compacts everything, not
            # only what already crossed the spill threshold.
            for key, hot in sorted(self._hot.items()):
                if hot.n:
                    self._spill(key, hot)
        for key in sorted(self._segments):
            segments = self._segments[key]
            if retention is not None and segments:
                newest = self.newest_time(key.component, key.metric)
                cutoff = (newest if newest is not None
                          else segments[-1].end) - retention
                keep = [s for s in segments if s.end >= cutoff]
                for segment in segments:
                    if segment.end < cutoff:
                        stats["segments_dropped"] += 1
                        stats["samples_dropped"] += segment.n
                        removed_files.append(segment.file)
                segments = keep
            if self.schedule is not None:
                segments = self._roll_series(key, segments,
                                             removed_files, stats)
            merged: list[Segment] = []
            run: list[Segment] = []

            def _seal_run() -> None:
                if len(run) < 2:
                    merged.extend(run)
                    run.clear()
                    return
                parts = [
                    _read_segment(self.directory / s.file,
                                  self.segment_format)
                    for s in run
                ]
                data = {
                    name: np.concatenate([p[name] for p in parts])
                    for name in parts[0]
                }
                name = self._new_segment_name()
                _write_segment(self.directory / name, data,
                               self.segment_format)
                t = data["t"]
                merged.append(Segment(name, float(t[0]), float(t[-1]),
                                      int(t.size), run[0].resolution))
                stats["segments_merged"] += len(run)
                stats["segments_written"] += 1
                removed_files.extend(s.file for s in run)
                run.clear()

            for segment in segments:
                if run and segment.resolution != run[0].resolution:
                    # Rollup buckets must not concatenate into a raw
                    # segment (or a differently-sized one): a merged
                    # segment keeps exactly one resolution.
                    _seal_run()
                if segment.n < self.compact_min_points:
                    run.append(segment)
                else:
                    _seal_run()
                    merged.append(segment)
            _seal_run()
            if merged:
                self._segments[key] = merged
            else:
                del self._segments[key]
        self._write_index()
        for file in removed_files:
            (self.directory / file).unlink(missing_ok=True)
        return stats

    # -- durability ----------------------------------------------------

    def flush(self) -> None:
        """Persist the segment index (hot tails stay in RAM)."""
        self._write_index()

    def close(self) -> None:
        """Spill every non-empty hot tail, then persist the index."""
        for key, hot in list(self._hot.items()):
            if hot.n:
                self._spill(key, hot)
        self._write_index()

    def set_metadata(self, meta: dict) -> None:
        super().set_metadata(meta)
        self._write_index()


def open_backend(kind: str, path, **kwargs):
    """Construct a backend by registered name.

    Resolves through the plugin registry
    (:data:`repro.api.registry.BACKENDS`), so backends registered via
    :func:`repro.api.register_backend` open exactly like the builtins
    (memory / sqlite / spill).
    """
    from repro.api.registry import BACKENDS

    return BACKENDS.create(kind, path, **kwargs)
