"""Write-ahead ingest journal for crash-safe streaming restarts.

Every batch the :class:`~repro.streaming.bus.IngestionBus` flushes is
appended here *before* it is delivered to subscribers, one JSON line
per (component, metric) batch.  A killed streaming process can then be
resumed losslessly: replaying the journal through a fresh
:class:`~repro.streaming.window.WindowStore` rebuilds the exact ring
state the dead process held (ingestion order and eviction are
deterministic), after which a checkpoint restores the analysis state
on top (:mod:`repro.persistence.checkpoint`).

JSON float serialization uses shortest-roundtrip ``repr``, so replayed
samples are bit-identical to the originals.  A crash can truncate the
final line; replay detects and discards exactly that partial record,
and re-opening a journal for appending first truncates such a torn
tail so new records never merge into it.

One deliberate asymmetry: a batch whose *delivery* failed (a
subscriber raised mid-flush) is dropped from delivery but kept in the
journal -- restoring from the journal resurrects it, which is
recovery of otherwise-lost data, not corruption.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator

import numpy as np

#: A replayed record: (component, metric, times, values).
JournalRecord = tuple[str, str, np.ndarray, np.ndarray]


def _repair_torn_tail(path: Path) -> None:
    """Truncate a partial final line left by a mid-write crash.

    Every complete record ends with a newline (records contain none
    internally), so any bytes after the last newline are a torn write;
    appending to them would merge the next record into garbage.
    """
    if not path.exists():
        return
    with open(path, "rb") as handle:
        data = handle.read()
    if not data or data.endswith(b"\n"):
        return
    keep = data.rfind(b"\n") + 1  # 0 when no newline at all
    with open(path, "rb+") as handle:
        handle.truncate(keep)


class IngestJournal:
    """Append-only batch log, one JSON object per line."""

    def __init__(self, path, fsync: bool = False,
                 truncate: bool = False):
        """``fsync=True`` syncs on every :meth:`commit` -- durable
        against power loss, at the cost of one fsync per bus flush.
        ``truncate=True`` starts the journal fresh (a new run that is
        not resuming); the default appends, after repairing any torn
        tail a crash left behind."""
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        if truncate:
            mode = "w"
        else:
            _repair_torn_tail(self.path)
            mode = "a"
        self._fh = open(self.path, mode, encoding="utf-8")
        self.records_written = 0

    def append_batch(self, component: str, metric: str,
                     times, values) -> None:
        """Log one flushed batch (called by the bus ahead of delivery)."""
        record = {
            "c": component,
            "m": metric,
            "t": [float(x) for x in np.asarray(times).reshape(-1)],
            "v": [float(x) for x in np.asarray(values).reshape(-1)],
        }
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.records_written += 1

    def commit(self) -> None:
        """Push buffered lines to the OS (and to disk with ``fsync``)."""
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        self.commit()
        self._fh.close()


def replay_journal(path) -> Iterator[JournalRecord]:
    """Yield every complete record of a journal, in write order.

    A torn final line (the crash case) is skipped silently; a corrupt
    line in the *middle* of the file raises, because everything after
    it would silently vanish otherwise.  The file is streamed with one
    line of lookahead -- journals of long runs are large, so replay
    must not materialize them in memory.
    """
    path = Path(path)
    if not path.exists():
        return

    def parse(number: int, stripped: str) -> JournalRecord:
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError:
            raise ValueError(
                f"corrupt journal record at {path}:{number}"
            ) from None
        return (record["c"], record["m"],
                np.asarray(record["t"], dtype=float),
                np.asarray(record["v"], dtype=float))

    with open(path, "r", encoding="utf-8") as handle:
        held: tuple[int, str] | None = None
        for number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            if held is not None:
                yield parse(*held)  # not last -> corruption raises
            held = (number, stripped)
        if held is not None:
            try:
                yield parse(*held)
            except ValueError:
                return  # torn tail from a mid-write crash


def journal_record_count(path) -> int:
    """Complete records currently recoverable from a journal file."""
    return sum(1 for _ in replay_journal(path))
