"""Write-ahead ingest journal for crash-safe streaming restarts.

Every batch the :class:`~repro.streaming.bus.IngestionBus` flushes is
appended here *before* it is delivered to subscribers, one JSON line
per (component, metric) batch.  A killed streaming process can then be
resumed losslessly: replaying the journal through a fresh
:class:`~repro.streaming.window.WindowStore` rebuilds the exact ring
state the dead process held (ingestion order and eviction are
deterministic), after which a checkpoint restores the analysis state
on top (:mod:`repro.persistence.checkpoint`).

JSON float serialization uses shortest-roundtrip ``repr``, so replayed
samples are bit-identical to the originals.  A crash can truncate the
final line; replay detects and discards exactly that partial record,
and re-opening a journal for appending first truncates such a torn
tail so new records never merge into it.

**Rotation.**  The journal is a sequence of files: the *active* file
(the given path) plus zero or more immutable rotated *segments*
(``<path>.000001``, ``.000002``, ...).  :meth:`IngestJournal.rotate`
seals the active file into the next segment -- the checkpoint policy
rotates at every checkpoint epoch -- and :meth:`IngestJournal.retire`
deletes segments whose newest sample is older than a cutoff.  Samples
past the window store's retention horizon are evicted during replay
anyway, so a checkpoint plus the retention span makes every older
segment redundant for restart: retiring them bounds the journal's
disk footprint without changing what a restore rebuilds.  Replay
(:func:`replay_journal`) spans segments in rotation order and then
the active file, so rotation is invisible to readers.

One deliberate asymmetry: a batch whose *delivery* failed (a
subscriber raised mid-flush) is dropped from delivery but kept in the
journal -- restoring from the journal resurrects it, which is
recovery of otherwise-lost data, not corruption.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Iterator

import numpy as np

#: A replayed record: (component, metric, times, values).
JournalRecord = tuple[str, str, np.ndarray, np.ndarray]

#: Zero-padded width of rotated-segment sequence numbers.
_SEQ_WIDTH = 6


def _repair_torn_tail(path: Path) -> None:
    """Truncate a partial final line left by a mid-write crash.

    Every complete record ends with a newline (records contain none
    internally), so any bytes after the last newline are a torn write;
    appending to them would merge the next record into garbage.
    """
    if not path.exists():
        return
    with open(path, "rb") as handle:
        data = handle.read()
    if not data or data.endswith(b"\n"):
        return
    keep = data.rfind(b"\n") + 1  # 0 when no newline at all
    with open(path, "rb+") as handle:
        handle.truncate(keep)


def journal_segments(path) -> list[Path]:
    """Rotated segment files of a journal, oldest first."""
    path = Path(path)
    pattern = re.compile(
        re.escape(path.name) + r"\.(\d{" + str(_SEQ_WIDTH) + r"})\Z"
    )
    if not path.parent.exists():
        return []
    found = []
    for candidate in path.parent.iterdir():
        match = pattern.fullmatch(candidate.name)
        if match is not None:
            found.append((int(match.group(1)), candidate))
    return [segment for _seq, segment in sorted(found)]


class IngestJournal:
    """Append-only batch log: rotated segments plus one active file."""

    def __init__(self, path, fsync: bool = False,
                 truncate: bool = False):
        """``fsync=True`` syncs on every :meth:`commit` -- durable
        against power loss, at the cost of one fsync per bus flush.
        ``truncate=True`` starts the journal fresh (a new run that is
        not resuming), deleting rotated segments of earlier runs; the
        default appends, after repairing any torn tail a crash left
        behind."""
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self._segment_newest: dict[Path, float] = {}
        segments = journal_segments(self.path)
        if truncate:
            for segment in segments:
                segment.unlink()
            segments = []
            mode = "w"
        else:
            _repair_torn_tail(self.path)
            mode = "a"
        self._seq = 0 if not segments \
            else int(segments[-1].name.rsplit(".", 1)[1])
        self._fh = open(self.path, mode, encoding="utf-8")
        self.records_written = 0
        self.rotations = 0
        """Segments sealed so far by :meth:`rotate`."""

        self.segments_retired = 0
        """Stale segments deleted so far by :meth:`retire`."""

        self._active_records = 0
        self._active_newest = float("-inf")

    def append_batch(self, component: str, metric: str,
                     times, values) -> None:
        """Log one flushed batch (called by the bus ahead of delivery)."""
        t = np.asarray(times).reshape(-1)
        record = {
            "c": component,
            "m": metric,
            "t": [float(x) for x in t],
            "v": [float(x) for x in np.asarray(values).reshape(-1)],
        }
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.records_written += 1
        self._active_records += 1
        if t.size:
            self._active_newest = max(self._active_newest, float(t[-1]))

    def commit(self) -> None:
        """Push buffered lines to the OS (and to disk with ``fsync``)."""
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    # -- rotation ------------------------------------------------------

    def segments(self) -> list[Path]:
        """Current rotated segment files, oldest first."""
        return journal_segments(self.path)

    def rotate(self) -> Path | None:
        """Seal the active file into the next immutable segment.

        Returns the new segment's path, or None when the active file
        holds no records (rotation would only create empty segments).
        The active file is reopened fresh, so appends continue
        seamlessly; replay order is preserved because segments sort
        before the active file.
        """
        if not self._active_records:
            return None
        self.commit()
        self._fh.close()
        self._seq += 1
        segment = self.path.with_name(
            f"{self.path.name}.{self._seq:0{_SEQ_WIDTH}d}"
        )
        os.replace(self.path, segment)
        if self._active_newest != float("-inf"):
            self._segment_newest[segment] = self._active_newest
        self._fh = open(self.path, "w", encoding="utf-8")
        self._active_records = 0
        self._active_newest = float("-inf")
        self.rotations += 1
        return segment

    def retire(self, cutoff: float) -> int:
        """Delete segments whose samples are all strictly older than
        ``cutoff``.

        The caller picks the cutoff so retired data is provably
        redundant.  The checkpoint policy uses the *stalest* series'
        newest sample minus the retention span: ring eviction is
        per-series relative to that series' own newest sample (and
        keeps samples exactly at its cutoff, hence the strict
        comparison here), so everything any ring still retains lives
        in the surviving segments and a restore rebuilds the dead
        run's rings exactly.  Returns how many segments were deleted.
        """
        retired = 0
        for segment in self.segments():
            newest = self._segment_newest.get(segment)
            if newest is None:
                newest = _scan_newest(segment)
                self._segment_newest[segment] = newest
            if newest < cutoff:
                segment.unlink()
                self._segment_newest.pop(segment, None)
                retired += 1
        self.segments_retired += retired
        return retired

    def close(self) -> None:
        self.commit()
        self._fh.close()


def _scan_newest(segment: Path) -> float:
    """Newest sample timestamp in one journal file (-inf when none).

    Used for segments inherited from a dead run, whose newest times
    were cached only in that process's memory.
    """
    newest = float("-inf")
    for _component, _metric, times, _values in _replay_file(
            segment, tolerate_torn=True):
        if times.size:
            newest = max(newest, float(times[-1]))
    return newest


def _replay_file(path: Path,
                 tolerate_torn: bool) -> Iterator[JournalRecord]:
    """Yield the complete records of one journal file, in write order.

    With ``tolerate_torn`` a partial *final* line (the crash case) is
    skipped silently; a corrupt line in the middle of the file always
    raises, because everything after it would silently vanish
    otherwise.  The file is streamed with one line of lookahead --
    journals of long runs are large, so replay must not materialize
    them in memory.
    """
    if not path.exists():
        return

    def parse(number: int, stripped: str) -> JournalRecord:
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError:
            raise ValueError(
                f"corrupt journal record at {path}:{number}"
            ) from None
        return (record["c"], record["m"],
                np.asarray(record["t"], dtype=float),
                np.asarray(record["v"], dtype=float))

    with open(path, "r", encoding="utf-8") as handle:
        held: tuple[int, str] | None = None
        for number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            if held is not None:
                yield parse(*held)  # not last -> corruption raises
            held = (number, stripped)
        if held is not None:
            try:
                yield parse(*held)
            except ValueError:
                if not tolerate_torn:
                    raise
                return  # torn tail from a mid-write crash


def replay_journal(path) -> Iterator[JournalRecord]:
    """Yield every complete record of a journal, in write order.

    Spans rotated segments (oldest first) and then the active file, so
    rotation is invisible to readers.  Only the active file can end in
    a torn line (segments are sealed by a completed rotation), so only
    its final record is forgiven.
    """
    path = Path(path)
    for segment in journal_segments(path):
        yield from _replay_file(segment, tolerate_torn=False)
    yield from _replay_file(path, tolerate_torn=True)


def journal_record_count(path) -> int:
    """Complete records currently recoverable from a journal."""
    return sum(1 for _ in replay_journal(path))
