"""Durable persistence & replay: storage backends, journal, checkpoints.

The analysis pipeline is storage-agnostic: a
:class:`~repro.persistence.backend.StorageBackend` holds the series,
and everything above it (the metered
:class:`~repro.metrics.store.MetricsStore`, the streaming
:class:`~repro.streaming.window.WindowStore`, the ``repro record`` /
``repro replay`` CLI) delegates to whichever implementation is
plugged in:

* :class:`~repro.persistence.backend.MemoryBackend` -- the original
  in-RAM MetricFrame (default, zero overhead);
* :class:`~repro.persistence.sqlite_backend.SqliteBackend` -- durable
  point log with indexed range scans in one sqlite file;
* :class:`~repro.persistence.spill.SpillBackend` -- hot numpy tails in
  RAM, cold immutable segments on disk (npz, or parquet when pyarrow
  is available) behind an ``index.json``.

Crash safety for streaming runs composes two pieces:

* :class:`~repro.persistence.journal.IngestJournal` -- a write-ahead
  log of every batch the ingestion bus flushes, replayable to rebuild
  the window-store rings bit-identically;
* :mod:`~repro.persistence.checkpoint` -- per-epoch snapshots of the
  analysis state (clusterings, dependency graph, drift baselines, hop
  schedule) so a restored engine continues incrementally.
"""

from repro.persistence.backend import (
    BackendBase,
    MemoryBackend,
    StorageBackend,
)
from repro.persistence.journal import (
    IngestJournal,
    journal_record_count,
    journal_segments,
    replay_journal,
)
from repro.persistence.retention import (
    RetentionSchedule,
    RollupSeries,
    Tier,
    format_duration,
    parse_duration,
    rollup_arrays,
)
from repro.persistence.spill import SpillBackend, open_backend
from repro.persistence.sqlite_backend import SqliteBackend

#: Checkpoint symbols resolve lazily (PEP 562): checkpoint.py imports
#: the streaming engine, which imports the metrics store, which imports
#: this package -- an eager import here would close that cycle.
_CHECKPOINT_EXPORTS = (
    "CheckpointPolicy",
    "checkpoint_state",
    "load_checkpoint",
    "restore_engine",
    "save_checkpoint",
)


def __getattr__(name: str):
    if name in _CHECKPOINT_EXPORTS:
        from repro.persistence import checkpoint

        return getattr(checkpoint, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )

__all__ = [
    "BackendBase",
    "CheckpointPolicy",
    "IngestJournal",
    "MemoryBackend",
    "RetentionSchedule",
    "RollupSeries",
    "SpillBackend",
    "SqliteBackend",
    "StorageBackend",
    "Tier",
    "checkpoint_state",
    "format_duration",
    "journal_record_count",
    "journal_segments",
    "load_checkpoint",
    "open_backend",
    "parse_duration",
    "replay_journal",
    "restore_engine",
    "rollup_arrays",
    "save_checkpoint",
]
