"""Reproduction of "Sieve: Actionable Insights from Monitored Metrics
in Distributed Systems" (Thalheim et al., Middleware 2017).

Sieve turns the flood of metrics a microservices application exports
into actionable insight in three steps -- load the application while
recording metrics and the call graph, reduce each component's metrics
to representatives with k-Shape clustering, and identify dependencies
between communicating components with Granger causality.  Two engines
consume the dependency graph: autoscaling orchestration and root cause
analysis.

Entry points:

>>> from repro.apps import build_sharelatex_application
>>> from repro.core import Sieve
>>> from repro.workload import RandomWorkload
>>> sieve = Sieve(build_sharelatex_application())
>>> result = sieve.run(RandomWorkload(duration=60, seed=1),
...                    duration=60, seed=1)   # doctest: +SKIP

See README.md for the architecture overview, DESIGN.md for the system
inventory and substitution map, and EXPERIMENTS.md for paper-vs-measured
results.
"""

__version__ = "1.0.0"

#: The paper this package reproduces.
PAPER = (
    "Thalheim et al., 'Sieve: Actionable Insights from Monitored "
    "Metrics in Distributed Systems', ACM/IFIP/USENIX Middleware 2017, "
    "doi:10.1145/3135974.3135977"
)
