"""Metric-name pre-clustering (k-Shape initialization).

Developers name related metrics consistently ("cpu_usage",
"cpu_usage_percentile"), so grouping metric *names* gives a good
starting assignment for k-Shape: Sieve replaces the default random
initialization with clusters built from Jaro name similarity
(Section 3.2), cutting the iterations to convergence.  The final
clustering does not depend on names -- they only seed the iteration.

The grouping is complete-linkage agglomerative clustering over the
pairwise Jaro distance matrix, cut at ``k`` clusters.
"""

from __future__ import annotations

import numpy as np
from scipy.cluster.hierarchy import fcluster, linkage
from scipy.spatial.distance import squareform

from repro.stats.strings import jaro


def name_distance_matrix(names: list[str]) -> np.ndarray:
    """Pairwise Jaro distances between metric names."""
    n = len(names)
    out = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = 1.0 - jaro(names[i], names[j])
            out[i, j] = d
            out[j, i] = d
    return out


def name_based_labels(names: list[str], k: int) -> np.ndarray:
    """Initial cluster labels from name similarity, exactly ``k`` groups.

    Labels are re-indexed to ``0 .. k-1``.  For ``k == 1`` or a single
    name, everything lands in cluster 0.
    """
    n = len(names)
    if n == 0:
        raise ValueError("no names to cluster")
    if k < 1:
        raise ValueError("k must be >= 1")
    if k > n:
        raise ValueError(f"cannot form {k} groups from {n} names")
    if k == 1 or n == 1:
        return np.zeros(n, dtype=int)

    distances = name_distance_matrix(names)
    condensed = squareform(distances, checks=False)
    tree = linkage(condensed, method="complete")
    raw = fcluster(tree, t=k, criterion="maxclust")

    # fcluster may return fewer than k groups when distances tie; split
    # the largest groups until we reach exactly k.
    labels = np.asarray(raw, dtype=int) - 1
    unique = np.unique(labels)
    next_label = int(labels.max()) + 1
    while unique.size < k:
        sizes = {c: int(np.sum(labels == c)) for c in unique}
        biggest = max(sizes, key=sizes.get)
        members = np.flatnonzero(labels == biggest)
        if members.size < 2:
            break  # cannot split further; k-Shape repairs empties itself
        half = members[: members.size // 2]
        labels[half] = next_label
        next_label += 1
        unique = np.unique(labels)

    # Re-index compactly.
    _, compact = np.unique(labels, return_inverse=True)
    return compact.astype(int)
