"""Choosing the number of clusters by silhouette (paper Section 3.2).

k-Shape needs ``k`` up front; Sieve sweeps a small range (seven clusters
per component sufficed for components with up to 300 metrics) and keeps
the assignment with the best silhouette value, computed with SBD as the
distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.kshape import KShapeResult, kshape
from repro.clustering.preclustering import name_based_labels
from repro.stats.correlation import sbd_matrix as _batched_sbd_matrix
from repro.stats.silhouette import silhouette_score

#: Paper Section 3.2: "seven clusters per component was sufficient".
DEFAULT_MAX_K = 7


@dataclass
class KSelection:
    """Best clustering found by the k sweep."""

    result: KShapeResult
    k: int
    silhouette: float
    scores: dict[int, float]
    """Silhouette per attempted k."""


def sbd_matrix(series: np.ndarray) -> np.ndarray:
    """Pairwise SBD matrix of the input rows.

    Delegates to the batched FFT kernel
    (:func:`repro.stats.correlation.sbd_matrix`): one ``rfft`` over the
    stacked rows and one ``irfft`` per pair chunk instead of a
    transform round-trip per pair.
    """
    return _batched_sbd_matrix(series)


def select_k(
    series: np.ndarray,
    names: list[str] | None = None,
    max_k: int = DEFAULT_MAX_K,
    max_iterations: int = 30,
    seed: int = 0,
    distances: np.ndarray | None = None,
) -> KSelection:
    """Sweep ``k = 2 .. max_k`` and keep the best-silhouette clustering.

    ``names`` enables the Jaro name-similarity initialization; without
    names, initialization is random (seeded).  ``distances`` may pass a
    precomputed SBD matrix (reused across the sweep either way).

    Fewer than three series cannot be swept (silhouette needs at least
    two clusters with content); they come back as one trivial cluster.
    """
    data = np.atleast_2d(np.asarray(series, dtype=float))
    n = data.shape[0]
    if names is not None and len(names) != n:
        raise ValueError("one name per series required")

    if n < 3:
        trivial = kshape(data, 1, initial_labels=np.zeros(n, dtype=int),
                         max_iterations=1, seed=seed)
        return KSelection(result=trivial, k=1, silhouette=0.0,
                          scores={1: 0.0})

    if distances is None:
        distances = sbd_matrix(data)

    best: KShapeResult | None = None
    best_k = 2
    best_score = -np.inf
    scores: dict[int, float] = {}
    for k in range(2, min(max_k, n - 1) + 1):
        if names is not None:
            init = name_based_labels(names, k)
        else:
            init = None
        result = kshape(data, k, initial_labels=init,
                        max_iterations=max_iterations, seed=seed + k)
        if np.unique(result.labels).size < 2:
            continue
        score = silhouette_score(distances, result.labels)
        scores[k] = score
        if score > best_score:
            best, best_k, best_score = result, k, score

    if best is None:  # every sweep degenerated; fall back to k=2 random
        best = kshape(data, 2, max_iterations=max_iterations, seed=seed)
        best_k = 2
        best_score = float("nan")
    return KSelection(result=best, k=best_k, silhouette=best_score,
                      scores=scores)
