"""End-to-end per-component metric reduction (Sieve Step #2).

For one component this runs the full Section 3.2 pipeline:

1. drop unvarying metrics (variance <= 0.002);
2. interpolate gaps (cubic spline) and resample every series onto the
   common 500 ms grid;
3. z-normalize;
4. sweep k with name-seeded k-Shape, keep the best silhouette;
5. elect a representative per cluster -- the member with the smallest
   SBD to the cluster centroid.

The output :class:`ComponentClustering` carries the cluster metadata
(memberships, representatives, per-cluster distances) that both case
studies consume: autoscaling reads the representatives; RCA compares
memberships across application versions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.clustering.model_selection import DEFAULT_MAX_K, select_k
from repro.metrics.timeseries import MetricFrame, TimeSeries
from repro.stats.correlation import sbd, sbd_pairs
from repro.stats.interpolate import DEFAULT_GRID_INTERVAL, align_series
from repro.stats.timeseries_ops import (
    DEFAULT_VARIANCE_THRESHOLD,
    znormalize,
)


@dataclass
class Cluster:
    """One cluster of similarly-behaving metrics of a component."""

    index: int
    metrics: list[str]
    representative: str
    centroid: np.ndarray = field(repr=False)
    distances: dict[str, float] = field(default_factory=dict, repr=False)
    """SBD of every member to the centroid."""

    def __len__(self) -> int:
        return len(self.metrics)

    def metric_set(self) -> frozenset[str]:
        """Members as a frozen set (RCA similarity computations)."""
        return frozenset(self.metrics)

    def distance_to(self, values: np.ndarray) -> float:
        """Shape distance (SBD) of a fresh sample window to the centroid.

        ``values`` is a raw sample window of any member metric; it is
        z-normalized here.  Unequal lengths are reconciled by linear
        resampling onto the longer index grid, so windows of different
        spans remain comparable.  The streaming drift detector uses
        this to ask "does this cluster's shape still describe fresh
        data?" (values near 0: same shape; near 1: unrelated).
        """
        fresh = znormalize(np.asarray(values, dtype=float))
        centroid = np.asarray(self.centroid, dtype=float)
        if fresh.size < 2 or centroid.size < 2:
            return 0.0
        if fresh.size != centroid.size:
            target = max(fresh.size, centroid.size)
            grid = np.linspace(0.0, 1.0, target)
            if fresh.size < target:
                fresh = np.interp(grid,
                                  np.linspace(0.0, 1.0, fresh.size), fresh)
            else:
                centroid = np.interp(
                    grid, np.linspace(0.0, 1.0, centroid.size), centroid)
        return sbd(fresh, centroid)


@dataclass
class ComponentClustering:
    """Result of reducing one component's metrics."""

    component: str
    clusters: list[Cluster]
    silhouette: float
    k_scores: dict[int, float]
    filtered_metrics: list[str]
    """Metrics dropped by the variance filter."""

    total_metrics: int
    """Metrics before any reduction."""

    @property
    def representatives(self) -> list[str]:
        """The representative metric of each cluster."""
        return [cluster.representative for cluster in self.clusters]

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def labels(self) -> dict[str, int]:
        """metric name -> cluster index (clustered metrics only)."""
        return {
            metric: cluster.index
            for cluster in self.clusters
            for metric in cluster.metrics
        }

    def cluster_of(self, metric: str) -> Cluster | None:
        """The cluster containing ``metric`` (None if filtered/unknown)."""
        for cluster in self.clusters:
            if metric in cluster.metrics:
                return cluster
        return None


def _prepare_series(
    view: dict[str, TimeSeries],
    interval: float,
    variance_threshold: float,
) -> tuple[list[str], np.ndarray, list[str]]:
    """Filter, align and z-normalize a component's metric series."""
    kept: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    filtered: list[str] = []
    for name, ts in sorted(view.items()):
        if len(ts) < 4 or ts.is_unvarying(variance_threshold):
            filtered.append(name)
            continue
        # Read-only views: alignment and z-normalization allocate
        # their own outputs, so the copies the ``times``/``values``
        # properties make would be pure overhead -- and on
        # shared-memory shard workers the views are the zero-copy
        # window reads the shm transport exists for.
        kept[name] = (ts.times_view, ts.values_view)
    if not kept:
        return [], np.empty((0, 0)), filtered

    _grid, aligned = align_series(kept, interval=interval)
    names = sorted(aligned)
    matrix = np.vstack([znormalize(aligned[name]) for name in names])

    # Alignment can flatten a boundary-dominated series; re-filter.
    flat = matrix.std(axis=1) <= 1e-9
    if flat.any():
        filtered.extend(np.asarray(names, dtype=object)[flat].tolist())
        names = [n for n, f in zip(names, flat) if not f]
        matrix = matrix[~flat]
    return names, matrix, filtered


def reduce_component(
    component: str,
    view: dict[str, TimeSeries],
    interval: float = DEFAULT_GRID_INTERVAL,
    variance_threshold: float = DEFAULT_VARIANCE_THRESHOLD,
    max_k: int = DEFAULT_MAX_K,
    seed: int = 0,
) -> ComponentClustering:
    """Run the Step #2 pipeline for one component."""
    total = len(view)
    names, matrix, filtered = _prepare_series(
        view, interval, variance_threshold
    )

    if len(names) == 0:
        return ComponentClustering(
            component=component, clusters=[], silhouette=0.0, k_scores={},
            filtered_metrics=filtered, total_metrics=total,
        )
    if len(names) == 1:
        only = Cluster(index=0, metrics=list(names), representative=names[0],
                       centroid=matrix[0], distances={names[0]: 0.0})
        return ComponentClustering(
            component=component, clusters=[only], silhouette=0.0,
            k_scores={1: 0.0}, filtered_metrics=filtered,
            total_metrics=total,
        )

    selection = select_k(matrix, names=names, max_k=max_k, seed=seed)
    result = selection.result

    clusters: list[Cluster] = []
    for cluster_idx in sorted(np.unique(result.labels)):
        member_idx = np.flatnonzero(result.labels == cluster_idx)
        members = [names[i] for i in member_idx]
        centroid = result.centroids[cluster_idx]
        if not centroid.any():  # k == 1 fast path never ran refinement
            centroid = matrix[member_idx].mean(axis=0)
        member_dists, _ = sbd_pairs(matrix[member_idx],
                                    centroid[None, :])
        distances = {
            names[i]: float(member_dists[pos, 0])
            for pos, i in enumerate(member_idx)
        }
        representative = min(distances, key=distances.get)
        clusters.append(Cluster(
            index=int(cluster_idx),
            metrics=members,
            representative=representative,
            centroid=centroid,
            distances=distances,
        ))

    return ComponentClustering(
        component=component,
        clusters=clusters,
        silhouette=selection.silhouette,
        k_scores=selection.scores,
        filtered_metrics=filtered,
        total_metrics=total,
    )


#: A shard-executor payload: one component's full reduction input.
ReducePayload = tuple[str, dict[str, TimeSeries], float, float, int, int]


def reduce_payload(
    component: str,
    view: dict[str, TimeSeries],
    interval: float = DEFAULT_GRID_INTERVAL,
    variance_threshold: float = DEFAULT_VARIANCE_THRESHOLD,
    max_k: int = DEFAULT_MAX_K,
    seed: int = 0,
) -> ReducePayload:
    """Package one component's reduction as a picklable task payload."""
    return (component, view, interval, variance_threshold, max_k, seed)


def reduce_component_task(
    payload: ReducePayload,
) -> tuple[str, ComponentClustering]:
    """Shard-executor task: run Step #2 for one payload.

    Module-level and pure (the clustering is a deterministic function
    of the payload, seeded per component name), so process pools can
    pickle it and parallel results merge identically to serial runs.
    """
    component, view, interval, variance_threshold, max_k, seed = payload
    return component, reduce_component(
        component,
        view,
        interval=interval,
        variance_threshold=variance_threshold,
        max_k=max_k,
        seed=seed,
    )


def reduce_frame(
    frame: MetricFrame,
    interval: float = DEFAULT_GRID_INTERVAL,
    variance_threshold: float = DEFAULT_VARIANCE_THRESHOLD,
    max_k: int = DEFAULT_MAX_K,
    seed: int = 0,
    executor=None,
) -> dict[str, ComponentClustering]:
    """Reduce every component of a recorded run.

    ``executor`` (a :class:`repro.parallel.executor.ShardExecutor`, or
    anything with an order-preserving ``map``) fans the per-component
    reductions out to workers; None runs them inline.  Components are
    reduced independently, so the merged result is identical either
    way.
    """
    payloads = [
        reduce_payload(
            component,
            frame.component_view(component),
            interval=interval,
            variance_threshold=variance_threshold,
            max_k=max_k,
            seed=seed,
        )
        for component in frame.components
    ]
    if executor is None:
        results = [reduce_component_task(payload) for payload in payloads]
    else:
        results = executor.map(reduce_component_task, payloads)
    return dict(results)
