"""The k-Shape time-series clustering algorithm.

k-Shape (Paparrizos & Gravano, SIGMOD 2015) alternates two steps until
the assignment stabilizes:

* **assignment** -- every series joins the cluster whose centroid is
  nearest under the shape-based distance (SBD, cross-correlation based,
  shift-invariant);
* **refinement ("shape extraction")** -- each cluster's centroid is the
  maximizer of the summed squared normalized cross-correlation with its
  members, which (after aligning members to the current centroid) is
  the leading eigenvector of the centered Gram matrix -- equivalently
  the top right singular vector of the row-centered member matrix,
  which is how we compute it (an SVD over an ``n x L`` matrix instead
  of an eigendecomposition of ``L x L``).

Sieve runs k-Shape per component with metrics pre-normalized and
pre-gridded (Section 3.2), seeding the assignment from metric-name
similarity rather than at random.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.correlation import sbd_pairs, sbd_with_shift
from repro.stats.timeseries_ops import znormalize


@dataclass
class KShapeResult:
    """Outcome of one k-Shape run."""

    labels: np.ndarray
    """Cluster index per input series."""

    centroids: np.ndarray
    """Cluster centroids, shape ``(k, series_length)``."""

    iterations: int
    """Iterations until convergence (or the cap)."""

    converged: bool

    @property
    def k(self) -> int:
        """Number of clusters."""
        return self.centroids.shape[0]


def _shifted(series: np.ndarray, shift: int) -> np.ndarray:
    """``series`` displaced by ``shift`` samples, zero-padded."""
    if shift == 0:
        return series
    out = np.zeros_like(series)
    if shift > 0:
        out[shift:] = series[:-shift]
    else:
        out[:shift] = series[-shift:]
    return out


def _align_to(series: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Shift ``series`` so it best aligns with ``reference`` (zero-pad)."""
    _dist, shift = sbd_with_shift(series, reference)
    return _shifted(series, shift)


def _shape_extraction(members: np.ndarray,
                      current_centroid: np.ndarray) -> np.ndarray:
    """New centroid of one cluster (see module docstring)."""
    if members.shape[0] == 0:
        raise ValueError("cannot extract a shape from an empty cluster")
    # One batched SBD call yields every member's maximizing shift
    # against the current centroid (vs one FFT round-trip per member).
    _dists, shifts = sbd_pairs(members, current_centroid[None, :])
    aligned = np.vstack([
        _shifted(member, int(shift))
        for member, shift in zip(members, shifts[:, 0])
    ])
    # Row-center; with z-normalized members this is nearly a no-op but
    # keeps the optimization exactly the one of the k-Shape paper.
    centered = aligned - aligned.mean(axis=1, keepdims=True)
    try:
        _, _, vt = np.linalg.svd(centered, full_matrices=False)
    except np.linalg.LinAlgError:  # pragma: no cover - pathological input
        return znormalize(aligned.mean(axis=0))
    centroid = vt[0]
    # SVD sign ambiguity: orient the centroid with the cluster mean.
    if centroid @ aligned.sum(axis=0) < 0:
        centroid = -centroid
    return znormalize(centroid)


def _assign(series: np.ndarray,
            centroids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Nearest-centroid assignment under SBD (batched).

    Returns ``(labels, distances)`` where ``distances`` is the full
    series x centroid SBD matrix -- the empty-cluster repair reuses it
    instead of re-deriving per-series distances pair by pair.
    """
    distances, _shifts = sbd_pairs(series, centroids)
    return np.argmin(distances, axis=1), distances


def kshape(
    series: np.ndarray,
    k: int,
    initial_labels: np.ndarray | None = None,
    max_iterations: int = 30,
    seed: int = 0,
) -> KShapeResult:
    """Cluster ``series`` (rows) into ``k`` clusters with k-Shape.

    Input rows should be z-normalized and equal-length.  With
    ``initial_labels=None`` the initial assignment is random (the
    algorithm's default); Sieve passes name-similarity labels instead.
    Empty clusters are repaired by stealing the series farthest from
    its own centroid.
    """
    data = np.atleast_2d(np.asarray(series, dtype=float))
    n, length = data.shape
    if k < 1:
        raise ValueError("k must be >= 1")
    if k > n:
        raise ValueError(f"cannot form {k} clusters from {n} series")
    if length < 2:
        raise ValueError("series must have at least 2 observations")

    rng = np.random.default_rng(seed)
    if initial_labels is None:
        labels = rng.integers(0, k, size=n)
    else:
        labels = np.asarray(initial_labels, dtype=int).copy()
        if labels.shape != (n,):
            raise ValueError("initial_labels must have one entry per series")
        if labels.min() < 0 or labels.max() >= k:
            raise ValueError("initial_labels out of range for k clusters")

    centroids = np.zeros((k, length))
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        # Refinement.
        for cluster in range(k):
            member_idx = np.flatnonzero(labels == cluster)
            if member_idx.size == 0:
                continue
            reference = centroids[cluster]
            if not reference.any():
                reference = data[member_idx[0]]
            centroids[cluster] = _shape_extraction(data[member_idx],
                                                   reference)

        # Repair empty clusters before assignment.
        for cluster in range(k):
            if not centroids[cluster].any():
                donor = int(rng.integers(0, n))
                centroids[cluster] = data[donor]

        new_labels, centroid_distances = _assign(data, centroids)

        # Repair clusters emptied by the assignment: steal the series
        # farthest from their assigned centroids, one distinct donor per
        # empty cluster, never draining a cluster below one member.
        empty = [c for c in range(k) if not np.any(new_labels == c)]
        if empty:
            distances = centroid_distances[np.arange(n), new_labels]
            for cluster in empty:
                order = np.argsort(-distances)
                for donor in order:
                    donor = int(donor)
                    if np.sum(new_labels == new_labels[donor]) > 1:
                        new_labels[donor] = cluster
                        distances[donor] = -np.inf
                        break

        if np.array_equal(new_labels, labels):
            converged = True
            break
        labels = new_labels

    return KShapeResult(
        labels=labels,
        centroids=centroids,
        iterations=iteration,
        converged=converged,
    )
