"""Metric reduction: k-Shape clustering of per-component metrics.

Sieve's Step #2 (paper Section 3.2): per component, drop unvarying
metrics, reconstruct gaps with cubic splines onto a 500 ms grid,
z-normalize, cluster with k-Shape under the shape-based distance, pick
the cluster count by the best SBD-silhouette, and elect one
*representative metric* per cluster (the member closest to the
centroid).

* :mod:`repro.clustering.kshape` -- the k-Shape algorithm (assignment
  by SBD, shape extraction via the Rayleigh-quotient maximizer).
* :mod:`repro.clustering.preclustering` -- Jaro name-similarity initial
  assignments (Sieve's convergence accelerator).
* :mod:`repro.clustering.model_selection` -- the k sweep by silhouette.
* :mod:`repro.clustering.reduction` -- the end-to-end per-component
  reduction producing :class:`ComponentClustering` objects.
"""

from repro.clustering.kshape import KShapeResult, kshape
from repro.clustering.model_selection import select_k
from repro.clustering.preclustering import name_based_labels
from repro.clustering.reduction import (
    Cluster,
    ComponentClustering,
    reduce_component,
    reduce_frame,
)

__all__ = [
    "Cluster",
    "ComponentClustering",
    "KShapeResult",
    "kshape",
    "name_based_labels",
    "reduce_component",
    "reduce_frame",
    "select_k",
]
