"""Dimensionality-reduction baselines the paper compares against.

Section 3.2 justifies clustering over the alternatives:

* **PCA** "produces results that are not easily interpreted by
  developers" -- a principal component is a linear mix of all metrics,
  not a metric a developer can put on a dashboard or in a scaling rule;
* **random projections** "sacrifice accuracy to achieve performance and
  have stability issues producing different results across runs".

Both are implemented here so the claims are measurable: the ablation
benchmark quantifies interpretability (mass concentration of the
loadings) and run-to-run stability against k-Shape clustering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class PCAReduction:
    """Principal-component reduction of a metric matrix."""

    components: np.ndarray
    """Principal axes, shape ``(k, n_metrics)`` (rows are loadings)."""

    explained_variance_ratio: np.ndarray
    transformed: np.ndarray
    """Series projected onto the axes, shape ``(k, n_samples)``."""

    @property
    def k(self) -> int:
        return self.components.shape[0]

    def interpretability(self) -> float:
        """How metric-like the reduced dimensions are, in ``(0, 1]``.

        For each component: the largest absolute loading's share of the
        total loading mass.  A representative *metric* scores 1.0 (all
        mass on one metric); a typical principal component spreads mass
        over many metrics and scores near ``1/n_metrics``.
        """
        shares = []
        for row in self.components:
            mass = np.abs(row).sum()
            if mass <= 0:
                continue
            shares.append(np.abs(row).max() / mass)
        return float(np.mean(shares)) if shares else 0.0


def pca_reduce(matrix: np.ndarray, k: int) -> PCAReduction:
    """PCA over metrics: rows of ``matrix`` are metric time series.

    The "samples" of the PCA are time points; the "features" are
    metrics, so the principal axes live in metric space -- directly
    comparable with picking representative metrics.
    """
    data = np.atleast_2d(np.asarray(matrix, dtype=float))
    n_metrics, _n_samples = data.shape
    if not 1 <= k <= n_metrics:
        raise ValueError(f"need 1 <= k <= {n_metrics}, got {k}")

    centered = data - data.mean(axis=1, keepdims=True)
    # SVD of the (samples x metrics) matrix.
    u, s, vt = np.linalg.svd(centered.T, full_matrices=False)
    axes = vt[:k]
    variances = s**2
    total = variances.sum()
    ratio = variances[:k] / total if total > 0 else np.zeros(k)
    transformed = axes @ centered
    return PCAReduction(
        components=axes,
        explained_variance_ratio=ratio,
        transformed=transformed,
    )


@dataclass
class RandomProjectionReduction:
    """Gaussian random projection of a metric matrix."""

    projection: np.ndarray
    """Random matrix, shape ``(k, n_metrics)``."""

    transformed: np.ndarray

    @property
    def k(self) -> int:
        return self.projection.shape[0]


def random_projection_reduce(matrix: np.ndarray, k: int,
                             seed: int = 0) -> RandomProjectionReduction:
    """Johnson-Lindenstrauss style Gaussian projection over metrics."""
    data = np.atleast_2d(np.asarray(matrix, dtype=float))
    n_metrics, _ = data.shape
    if not 1 <= k <= n_metrics:
        raise ValueError(f"need 1 <= k <= {n_metrics}, got {k}")
    rng = np.random.default_rng(seed)
    projection = rng.normal(0.0, 1.0 / np.sqrt(k), size=(k, n_metrics))
    return RandomProjectionReduction(
        projection=projection,
        transformed=projection @ data,
    )


def reduction_stability(reduce_fn, matrix: np.ndarray, k: int,
                        seeds=(0, 1, 2)) -> float:
    """Run-to-run stability of a seeded reduction, in ``[0, 1]``.

    Reduces ``matrix`` once per seed and measures how similar the
    spanned subspaces are: mean absolute cosine of the principal angles
    between each pair of reduced bases (1.0 = identical subspace every
    run).  Deterministic methods (PCA, and k-Shape representatives with
    name-seeded init) score 1.0; random projections score low -- the
    instability the paper calls out.
    """
    bases = []
    for seed in seeds:
        out = reduce_fn(matrix, k, seed)
        basis, _ = np.linalg.qr(out.T)
        bases.append(basis[:, :k])
    scores = []
    for i in range(len(bases)):
        for j in range(i + 1, len(bases)):
            # Singular values of B_i^T B_j are cosines of the principal
            # angles between the two subspaces.
            cosines = np.linalg.svd(bases[i].T @ bases[j],
                                    compute_uv=False)
            scores.append(float(np.mean(np.clip(cosines, 0.0, 1.0))))
    return float(np.mean(scores)) if scores else 1.0
