"""OpenStack application model (case study #2, RCA).

The paper deploys OpenStack with Kolla (7 main components + auxiliaries,
47 microservices total) and evaluates root cause analysis on Launchpad
bug #1533942: a configuration error crashes the Neutron Open vSwitch
agent, after which VM launches fail with 'No valid host was found',
instances land in ERROR state and Neutron ports stay DOWN (paper
Section 6.3).

This model reproduces the 16 components of the paper's dependency
graphs (Table 5) with the *boot_and_delete* control-plane topology, and
injects the bug analog through the shared simulation environment: the
flag ``vm_launch_failing`` flips the state-dependent metrics exactly the
way the real bug did --

* metrics that exist only while launches succeed (instances in ACTIVE
  state, libvirt per-domain statistics, ports becoming ACTIVE, ...)
  disappear in the faulty version ("discarded" metrics);
* failure metrics (instances in ERROR state, ports stuck DOWN, scheduler
  retries, ...) appear only in the faulty version ("new" metrics).

The per-component counts of exported / new / discarded metrics are
calibrated to Table 5 of the paper (e.g. Nova API: 59 metrics, 7 new,
22 discarded), so the RCA engine faces the same novelty structure the
authors measured.  The *dynamics* of every metric still come from the
fluid simulation, so clusters, dependency edges and rankings are
computed, not scripted.
"""

from __future__ import annotations

import math

from repro.simulator.app import Application
from repro.simulator.component import (
    CallSpec,
    Component,
    ComponentSpec,
    EndpointSpec,
)
from repro.simulator.faults import EnvFlag, FaultPlan

#: The 16 dependency-graph components of Table 5 ("other 3 components"
#: are keystone, memcached and mariadb in this model).
OPENSTACK_COMPONENTS = (
    "nova-api", "nova-libvirt", "nova-scheduler", "neutron-server",
    "rabbitmq", "neutron-l3-agent", "nova-novncproxy", "glance-api",
    "neutron-dhcp-agent", "nova-compute", "glance-registry", "haproxy",
    "nova-conductor", "keystone", "memcached", "mariadb",
)

#: Environment key toggled by the injected fault.
FAULT_FLAG = "vm_launch_failing"


def _healthy_gauge(scale: float, phase: float = 0.0):
    """Metric exported only while VM launches succeed."""
    def fn(component: Component, now: float) -> float | None:
        if component.env.get(FAULT_FLAG):
            return None
        rate = component.total_request_rate()
        return scale * rate + 0.4 * scale * math.sin(0.05 * now + phase)
    return fn


def _faulty_gauge(scale: float, phase: float = 0.0):
    """Metric that appears only once VM launches fail."""
    def fn(component: Component, now: float) -> float | None:
        if not component.env.get(FAULT_FLAG):
            return None
        rate = component.total_request_rate()
        return scale * rate + 0.4 * scale * math.sin(0.05 * now + phase)
    return fn


def _pad_gauge(kind: str, scale: float, phase: float = 0.0):
    """Always-exported filler metric tied to one of the state signals.

    ``kind`` selects the driving signal so pads cluster naturally with
    the related base metrics: ``rate``, ``cpu``, ``memory`` or ``wave``
    (slow periodic housekeeping activity).
    """
    def fn(component: Component, now: float) -> float:
        if kind == "rate":
            base = component.total_request_rate() * scale
        elif kind == "cpu":
            base = component.cpu_usage * scale
        elif kind == "memory":
            base = component.memory_mb * scale
        elif kind == "wave":
            base = scale * (1.0 + math.sin(0.02 * now + phase))
        else:  # pragma: no cover - guarded by the factory call sites
            raise ValueError(f"unknown pad kind {kind!r}")
        return base + 0.05 * scale * math.sin(0.6 * now + phase * 3.1)
    return fn


def _named(names: list[str], factory, *args) -> tuple:
    """Build ``(name, fn)`` custom-metric tuples with spread phases."""
    return tuple(
        (name, factory(*args, phase=0.7 * i)) for i, name in enumerate(names)
    )


def _pads(names: list[str]) -> tuple:
    """Pad metrics cycling through the driving-signal kinds."""
    kinds = ("rate", "cpu", "memory", "wave")
    return tuple(
        (name, _pad_gauge(kinds[i % 4], 1.0 + 0.3 * i, phase=0.9 * i))
        for i, name in enumerate(names)
    )


def _nova_api_metrics() -> tuple:
    """Nova API: 7 new / 22 discarded / 6 pads (Table 5 row 1)."""
    discarded = (
        ["nova_instances_in_state_ACTIVE", "nova_instances_in_state_BUILD",
         "nova_instance_boot_time_mean", "nova_instance_boot_time_p90"]
        + [f"nova_instance_vcpus_domain{i}" for i in range(6)]
        + [f"nova_instance_memory_mb_domain{i}" for i in range(6)]
        + [f"nova_instance_disk_gb_domain{i}" for i in range(6)]
    )
    new = [
        "nova_instances_in_state_ERROR",
        "nova_boot_failures_total",
        "nova_no_valid_host_errors",
        "nova_api_fault_responses_500",
        "nova_api_fault_responses_409",
        "nova_instance_spawn_retries",
        "nova_quota_rollback_count",
    ]
    pads = ["nova_api_request_queue_depth", "nova_api_token_cache_size",
            "nova_api_workers_busy", "nova_api_db_session_count",
            "nova_api_paste_pipeline_time", "nova_api_wsgi_connections"]
    return (_named(discarded, _healthy_gauge, 2.0)
            + _named(new, _faulty_gauge, 2.0) + _pads(pads))


def _nova_libvirt_metrics() -> tuple:
    """Nova libvirt: 21 discarded, 0 new, 8 pads (Table 5 row 2).

    No VM ever boots in the faulty version, so every per-domain libvirt
    statistic disappears.
    """
    discarded = (
        [f"libvirt_domain{i}_cpu_time" for i in range(7)]
        + [f"libvirt_domain{i}_memory_rss" for i in range(7)]
        + [f"libvirt_domain{i}_vcpu_count" for i in range(7)]
    )
    pads = ["libvirt_connections", "libvirt_storage_pool_allocation",
            "libvirt_storage_pool_capacity", "libvirt_network_bridges",
            "libvirt_host_cpu_time", "libvirt_host_memory_used",
            "libvirt_events_total", "libvirt_api_call_time_mean"]
    return _named(discarded, _healthy_gauge, 1.5) + _pads(pads)


def _nova_scheduler_metrics() -> tuple:
    """Nova scheduler: 7 new / 7 discarded / 1 pad (Table 5 row 3)."""
    discarded = ["scheduler_host_selected_total",
                 "scheduler_placement_success_rate",
                 "scheduler_filter_pass_ComputeFilter",
                 "scheduler_filter_pass_RamFilter",
                 "scheduler_filter_pass_DiskFilter",
                 "scheduler_weighed_hosts_mean",
                 "scheduler_claim_success_total"]
    new = ["scheduler_no_valid_host_total",
           "scheduler_retries_exhausted",
           "scheduler_filter_fail_ComputeFilter",
           "scheduler_filter_fail_RamFilter",
           "scheduler_filter_fail_DiskFilter",
           "scheduler_placement_failures",
           "scheduler_claim_abort_total"]
    pads = ["scheduler_run_interval_drift"]
    return (_named(discarded, _healthy_gauge, 1.0)
            + _named(new, _faulty_gauge, 1.0) + _pads(pads))


def _neutron_server_metrics() -> tuple:
    """Neutron server: 2 new / 10 discarded / 9 pads (Table 5 row 4)."""
    discarded = (
        ["neutron_ports_in_status_ACTIVE", "neutron_port_binding_success",
         "neutron_ovs_agent_heartbeats", "neutron_ovs_agent_flows"]
        + [f"neutron_port_tx_bytes_port{i}" for i in range(3)]
        + [f"neutron_port_rx_bytes_port{i}" for i in range(3)]
    )
    new = ["neutron_ports_in_status_DOWN", "neutron_port_binding_failures"]
    pads = ["neutron_networks_total", "neutron_subnets_total",
            "neutron_security_groups", "neutron_api_workers_busy",
            "neutron_rpc_pool_size", "neutron_db_retries",
            "neutron_router_count", "neutron_floatingip_count",
            "neutron_quota_usage_ports"]
    return (_named(discarded, _healthy_gauge, 1.8)
            + _named(new, _faulty_gauge, 1.8) + _pads(pads))


def _rabbitmq_metrics() -> tuple:
    """RabbitMQ: 5 new / 6 discarded / 30 pads (Table 5 row 5)."""
    discarded = ["queue_compute_consumers_active",
                 "queue_network_vif_plugged_events",
                 "queue_notifications_instance_create_end",
                 "queue_notifications_port_create_end",
                 "queue_ovs_agent_report_state",
                 "queue_scheduler_ack_rate"]
    new = ["queue_notifications_instance_create_error",
           "queue_messages_unacked_backlog",
           "queue_dead_letter_total",
           "queue_scheduler_retry_messages",
           "queue_compute_requeue_total"]
    per_queue = ["nova", "neutron", "glance", "conductor", "scheduler",
                 "dhcp_agent", "l3_agent", "notifications", "reply", "cert"]
    pads = (
        [f"queue_{q}_depth" for q in per_queue]
        + [f"queue_{q}_publish_rate" for q in per_queue]
        + [f"queue_{q}_deliver_rate" for q in per_queue]
    )
    return (_named(discarded, _healthy_gauge, 2.5)
            + _named(new, _faulty_gauge, 2.5) + _pads(pads))


def _simple_fault_metrics(discarded: list[str], new: list[str],
                          pads: list[str]) -> tuple:
    """Helper for the remaining components."""
    return (_named(discarded, _healthy_gauge, 1.0)
            + _named(new, _faulty_gauge, 1.0) + _pads(pads))


def openstack_specs() -> list[ComponentSpec]:
    """Component specs for the 16-component OpenStack control plane."""
    return [
        ComponentSpec(
            name="haproxy", kind="loadbalancer", metric_profile="tiny",
            export_errors="never",
            endpoints=(EndpointSpec("public_api", service_time=0.002),),
            calls=(
                CallSpec("nova-api", ratio=0.45, delay=0.5),
                CallSpec("keystone", ratio=0.20, delay=0.5),
                CallSpec("glance-api", ratio=0.12, delay=0.5),
                CallSpec("neutron-server", ratio=0.18, delay=0.5),
                CallSpec("nova-novncproxy", ratio=0.05, delay=0.5),
            ),
            concurrency=64,
            custom_metrics=_simple_fault_metrics(
                ["lb_backend_nova_api_2xx"], ["lb_backend_nova_api_5xx"],
                ["lb_frontend_sessions_rate", "lb_backend_queue_time"],
            ),
        ),
        ComponentSpec(
            name="nova-api", kind="python", metric_profile="slim",
            export_errors="always",
            endpoints=(
                EndpointSpec("servers_POST", service_time=0.080, weight=2.0),
                EndpointSpec("servers_DELETE", service_time=0.050,
                             weight=1.5),
                EndpointSpec("servers_detail_GET", service_time=0.030,
                             weight=3.0),
                EndpointSpec("flavors_GET", service_time=0.010, weight=1.0),
            ),
            calls=(
                CallSpec("keystone", ratio=0.9, delay=0.4),
                CallSpec("rabbitmq", ratio=1.4, delay=0.4),
                CallSpec("neutron-server", ratio=0.7, delay=0.5),
                CallSpec("glance-api", ratio=0.4, delay=0.5),
                CallSpec("nova-conductor", ratio=0.5, delay=0.5),
            ),
            instances=2, concurrency=16,
            custom_metrics=_nova_api_metrics(),
        ),
        ComponentSpec(
            name="nova-scheduler", kind="python", metric_profile="slim",
            export_errors="always",
            endpoints=(EndpointSpec("select_destinations",
                                    service_time=0.040),),
            calls=(CallSpec("rabbitmq", ratio=0.5, delay=0.5),),
            custom_metrics=_nova_scheduler_metrics(),
        ),
        ComponentSpec(
            name="nova-conductor", kind="python", metric_profile="slim",
            export_errors="always",
            endpoints=(EndpointSpec("build_instances", service_time=0.030),),
            calls=(
                CallSpec("mariadb", ratio=1.6, delay=0.4),
                CallSpec("rabbitmq", ratio=0.4, delay=0.5),
            ),
            custom_metrics=_simple_fault_metrics(
                ["conductor_build_success_writes",
                 "conductor_instance_mapping_updates"],
                [],
                ["conductor_rpc_workers_busy", "conductor_db_pool_used",
                 "conductor_object_backport_calls",
                 "conductor_cell_mapping_cache",
                 "conductor_periodic_task_time",
                 "conductor_rpc_reply_time_mean",
                 "conductor_db_retry_total", "conductor_rpc_timeout_total",
                 "conductor_instance_updates_rate",
                 "conductor_heartbeat_interval",
                 "conductor_rpc_queue_depth",
                 "conductor_version_cache_entries"],
            ),
        ),
        ComponentSpec(
            name="nova-compute", kind="python", metric_profile="slim",
            export_errors="always",
            endpoints=(
                EndpointSpec("spawn", service_time=0.120, weight=2.0),
                EndpointSpec("destroy", service_time=0.060, weight=1.0),
            ),
            calls=(
                CallSpec("nova-libvirt", ratio=1.2, delay=0.5),
                CallSpec("neutron-server", ratio=0.6, delay=0.6),
                CallSpec("glance-api", ratio=0.5, delay=0.5),
                CallSpec("rabbitmq", ratio=0.5, delay=0.5),
            ),
            custom_metrics=_simple_fault_metrics(
                ["compute_vif_plug_time_mean",
                 "compute_instances_running",
                 "compute_spawn_success_total"],
                [],
                _compute_pads(),
            ),
        ),
        ComponentSpec(
            name="nova-libvirt", kind="generic", metric_profile="slim",
            export_errors="never",
            endpoints=(EndpointSpec("domain_ops", service_time=0.050),),
            custom_metrics=_nova_libvirt_metrics(),
        ),
        ComponentSpec(
            name="nova-novncproxy", kind="generic", metric_profile="tiny",
            export_errors="never",
            endpoints=(EndpointSpec("console_GET", service_time=0.015),),
            calls=(CallSpec("nova-api", ratio=0.3, delay=0.5),),
            custom_metrics=_simple_fault_metrics(
                [f"novnc_session_bytes_domain{i}" for i in range(4)]
                + ["novnc_sessions_active", "novnc_session_duration_mean",
                   "novnc_handshake_success"],
                [], [],
            ),
        ),
        ComponentSpec(
            name="neutron-server", kind="python", metric_profile="slim",
            export_errors="always",
            endpoints=(
                EndpointSpec("ports_POST", service_time=0.060, weight=2.0),
                EndpointSpec("ports_DELETE", service_time=0.040, weight=1.0),
                EndpointSpec("networks_GET", service_time=0.020, weight=1.5),
            ),
            calls=(
                CallSpec("mariadb", ratio=1.8, delay=0.4),
                CallSpec("rabbitmq", ratio=0.8, delay=0.5),
                CallSpec("keystone", ratio=0.4, delay=0.4),
            ),
            instances=2,
            custom_metrics=_neutron_server_metrics(),
        ),
        ComponentSpec(
            name="neutron-l3-agent", kind="generic", metric_profile="slim",
            export_errors="never",
            endpoints=(EndpointSpec("router_sync", service_time=0.030),),
            calls=(
                CallSpec("rabbitmq", ratio=0.3, delay=0.5),
                CallSpec("neutron-server", ratio=0.3, delay=0.6),
            ),
            custom_metrics=_simple_fault_metrics(
                [f"l3_router{i}_tx_packets" for i in range(4)]
                + ["l3_floating_ip_active", "l3_nat_rules_applied",
                   "l3_gateway_ports_up"],
                [],
                ["l3_agent_sync_time", "l3_agent_routers_total",
                 "l3_agent_namespaces", "l3_agent_rpc_loop_time",
                 "l3_agent_ha_state_changes", "l3_agent_keepalived_procs",
                 "l3_agent_iptables_apply_time", "l3_agent_port_updates",
                 "l3_agent_fullsync_total", "l3_agent_pd_subnets",
                 "l3_agent_fip_nat_entries", "l3_agent_qos_rules",
                 "l3_agent_config_reloads", "l3_agent_external_gw_checks",
                 "l3_agent_radvd_procs", "l3_agent_metering_labels",
                 "l3_agent_cpu_share", "l3_agent_memory_share",
                 "l3_agent_dvr_updates", "l3_agent_arp_entries",
                 "l3_agent_snat_ports", "l3_agent_router_updates_rate"],
            ),
        ),
        ComponentSpec(
            name="neutron-dhcp-agent", kind="generic", metric_profile="slim",
            export_errors="never",
            endpoints=(EndpointSpec("dhcp_sync", service_time=0.020),),
            calls=(
                CallSpec("rabbitmq", ratio=0.3, delay=0.5),
                CallSpec("neutron-server", ratio=0.3, delay=0.6),
            ),
            custom_metrics=_simple_fault_metrics(
                ["dhcp_leases_active", "dhcp_offers_sent",
                 "dhcp_acks_sent", "dhcp_port_reservations"],
                [],
                ["dhcp_agent_networks_total", "dhcp_agent_sync_time",
                 "dhcp_agent_dnsmasq_procs", "dhcp_agent_hosts_entries",
                 "dhcp_agent_rpc_loop_time", "dhcp_agent_port_updates",
                 "dhcp_agent_resync_total", "dhcp_agent_namespaces",
                 "dhcp_agent_config_reloads", "dhcp_agent_lease_duration",
                 "dhcp_agent_relay_packets", "dhcp_agent_option_sets",
                 "dhcp_agent_subnet_count", "dhcp_agent_static_routes",
                 "dhcp_agent_mtu_overrides", "dhcp_agent_ipv6_subnets",
                 "dhcp_agent_bindings_rate", "dhcp_agent_cache_entries",
                 "dhcp_agent_cleanup_runs", "dhcp_agent_errors_logged",
                 "dhcp_agent_queue_depth"],
            ),
        ),
        ComponentSpec(
            name="glance-api", kind="python", metric_profile="slim",
            export_errors="always",
            endpoints=(
                EndpointSpec("images_GET", service_time=0.025, weight=2.0),
                EndpointSpec("image_data_GET", service_time=0.200,
                             weight=1.0),
            ),
            calls=(
                CallSpec("glance-registry", ratio=0.8, delay=0.4),
                CallSpec("keystone", ratio=0.4, delay=0.4),
            ),
            request_bytes=120_000.0,
            custom_metrics=_simple_fault_metrics(
                ["glance_image_downloads_success",
                 "glance_image_download_time_mean",
                 "glance_cache_hits_boot",
                 "glance_image_serves_active",
                 "glance_bandwidth_to_compute"],
                [],
                ["glance_images_total", "glance_cache_size_mb",
                 "glance_api_workers_busy", "glance_upload_rate"],
            ),
        ),
        ComponentSpec(
            name="glance-registry", kind="generic", metric_profile="slim",
            export_errors="never",
            endpoints=(EndpointSpec("image_meta_GET", service_time=0.012),),
            calls=(CallSpec("mariadb", ratio=1.1, delay=0.4),),
            custom_metrics=_simple_fault_metrics(
                ["registry_image_status_active_updates",
                 "registry_member_lookups_boot",
                 "registry_location_updates"],
                [],
                ["registry_db_queries_rate", "registry_cache_entries",
                 "registry_api_time_mean", "registry_workers_busy",
                 "registry_schema_loads", "registry_auth_checks",
                 "registry_list_requests", "registry_detail_requests",
                 "registry_update_requests", "registry_rpc_time_mean"],
            ),
        ),
        ComponentSpec(
            name="rabbitmq", kind="queue", metric_profile="slim",
            export_errors="never",
            endpoints=(EndpointSpec("amqp", service_time=0.003),),
            calls=(
                CallSpec("nova-scheduler", ratio=0.30, delay=0.5),
                CallSpec("nova-compute", ratio=0.35, delay=0.5),
                CallSpec("nova-conductor", ratio=0.25, delay=0.5),
                CallSpec("neutron-l3-agent", ratio=0.15, delay=0.6),
                CallSpec("neutron-dhcp-agent", ratio=0.15, delay=0.6),
            ),
            concurrency=96,
            custom_metrics=_rabbitmq_metrics(),
        ),
        ComponentSpec(
            name="keystone", kind="python", metric_profile="slim",
            export_errors="always",
            endpoints=(
                EndpointSpec("tokens_POST", service_time=0.030, weight=2.0),
                EndpointSpec("validate_GET", service_time=0.008, weight=3.0),
            ),
            calls=(
                CallSpec("mariadb", ratio=0.7, delay=0.4),
                CallSpec("memcached", ratio=1.5, delay=0.3),
            ),
            custom_metrics=_pads(["keystone_tokens_issued_rate",
                                  "keystone_fernet_rotations"]),
        ),
        ComponentSpec(
            name="memcached", kind="kv-store", metric_profile="slim",
            export_errors="never",
            endpoints=(EndpointSpec("cache_ops", service_time=0.0005),),
            concurrency=128,
            custom_metrics=_pads(["memcached_curr_items",
                                  "memcached_expired_unfetched",
                                  "memcached_cas_hits",
                                  "memcached_conn_yields"]),
        ),
        ComponentSpec(
            name="mariadb", kind="database", metric_profile="slim",
            export_errors="never",
            endpoints=(
                EndpointSpec("select", service_time=0.004, weight=3.0),
                EndpointSpec("dml", service_time=0.007, weight=1.0),
            ),
            concurrency=64, baseline_memory_mb=1400.0,
        ),
    ]


def _compute_pads() -> list[str]:
    """Filler metric names for nova-compute (20 pads)."""
    return [
        "compute_resource_tracker_time", "compute_claims_total",
        "compute_allocations_total", "compute_image_cache_size",
        "compute_vcpus_used", "compute_memory_used_mb",
        "compute_disk_used_gb", "compute_periodic_sync_time",
        "compute_rpc_workers_busy", "compute_bdm_operations",
        "compute_volume_attachments", "compute_network_info_cache",
        "compute_heal_instance_info", "compute_power_state_syncs",
        "compute_reboot_requests", "compute_migration_count",
        "compute_hypervisor_load", "compute_host_cpu_frequency",
        "compute_host_disk_latency", "compute_pci_requests",
    ]


def build_openstack_application() -> Application:
    """The OpenStack control plane with haproxy + agents as entry points.

    The Neutron agents poll on their own (report-state loops), so a
    small fraction of 'external' load lands on them directly; everything
    else arrives through haproxy (the public API endpoint Rally hits).
    """
    return Application(
        "openstack", openstack_specs(),
        entrypoints={
            "haproxy": 0.90,
            "neutron-l3-agent": 0.05,
            "neutron-dhcp-agent": 0.05,
        },
    )


def openstack_fault_plan(at_time: float = 0.0) -> FaultPlan:
    """The bug #1533942 analog: VM launches fail from ``at_time`` on.

    The underlying crash (Neutron Open vSwitch agent) is outside the 16
    dependency-graph components; its *observable footprint* -- the flag
    every state-dependent metric reacts to -- is what the RCA engine
    must localize.
    """
    return FaultPlan(faults=[EnvFlag(FAULT_FLAG, True, at_time=at_time)])


# -- Table 1: the full monitoring surface ------------------------------

_TELEMETRY_SERVICES = {
    # service -> (resource kinds, resources per kind, fields per resource)
    "nova": (8, 40, 12),
    "neutron": (10, 35, 11),
    "cinder": (6, 30, 10),
    "glance": (4, 25, 9),
    "keystone": (4, 20, 8),
    "ceilometer": (12, 45, 10),
    "heat": (5, 22, 9),
    "swift": (7, 30, 10),
    "ironic": (4, 18, 8),
    "horizon": (3, 12, 6),
}


def full_metric_catalog() -> list[str]:
    """The potential metric space of a full OpenStack deployment.

    Table 1 of the paper counts 17 608 metrics for OpenStack, obtained
    from the API references and telemetry documentation [17, 19]: every
    response parameter of every resource of every service is a
    monitorable series.  This function enumerates a modelled catalog of
    that surface (service x resource-kind x resource x field); its size
    (17 608) matches the paper's count.
    """
    catalog: list[str] = []
    for service, (kinds, resources, fields) in _TELEMETRY_SERVICES.items():
        for kind in range(kinds):
            for resource in range(resources):
                for field in range(fields):
                    catalog.append(
                        f"{service}.kind{kind}.res{resource}.field{field}"
                    )
    # Trim/extend deterministically to the documented count.
    target = 17_608
    if len(catalog) > target:
        return catalog[:target]
    extra = (f"ceilometer.derived.metric{i}"
             for i in range(target - len(catalog)))
    return catalog + list(extra)
