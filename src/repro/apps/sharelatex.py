"""ShareLatex application model (case study #1).

ShareLatex is "structured as a microservices-based application,
delegating tasks to multiple well-defined components that include a
KV-store, load balancer, two databases and 11 node.js based components"
(paper Section 4.1) -- fifteen components in total, the ones named in
Figures 3, 4 and 6:

    chat, clsi, contacts, doc-updater, docstore, filestore, haproxy,
    mongodb, postgresql, real-time, redis, spelling, tags,
    track-changes, web

The topology below follows ShareLatex's architecture: haproxy fronts
``web`` (the HTTP API) and ``real-time`` (the websocket editor
channel); ``web`` fans out to the feature services; document editing
flows through ``doc-updater`` into redis/mongo; ``clsi`` (the LaTeX
compiler) hits postgresql and filestore.  The ``web`` endpoint set
includes ``Project_id_GET``, whose latency statistic
``http-requests_Project_id_GET_mean`` is the metric Sieve ends up
selecting as the autoscaling trigger (paper Section 6.2, Figure 6).

The real deployment exported 889 unique metrics (Table 1); this model
exports a comparable number (~55-70 per component) from the same metric
families.
"""

from __future__ import annotations

import math
from dataclasses import replace

from repro.simulator.app import Application
from repro.simulator.component import (
    CallSpec,
    Component,
    ComponentSpec,
    EndpointSpec,
)

#: Component names in the paper's figures.
SHARELATEX_COMPONENTS = (
    "chat", "clsi", "contacts", "doc-updater", "docstore", "filestore",
    "haproxy", "mongodb", "postgresql", "real-time", "redis", "spelling",
    "tags", "track-changes", "web",
)


def _runtime_pad(kind: str, scale: float, phase: float):
    """One always-exported runtime metric tied to a state signal.

    Real node.js services expose dozens of process/runtime series per
    component (event-loop timers, per-route counters, connection-pool
    gauges); these pads model that surface so the application's total
    metric count lands near the 889 the paper measured (Table 1).
    """
    def fn(component: Component, now: float) -> float:
        if kind == "rate":
            base = component.total_request_rate() * scale
        elif kind == "cpu":
            base = component.cpu_usage * scale
        elif kind == "memory":
            base = component.memory_mb * scale
        elif kind == "latency":
            base = component.mean_latency() * 1000.0 * scale
        else:  # "wave": slow periodic housekeeping (timers, cron jobs)
            base = scale * (1.0 + math.sin(0.015 * now + phase))
        return base + 0.04 * scale * math.sin(0.7 * now + 2.3 * phase)
    return fn


#: Per-process runtime metric families exported by every node.js
#: component (express + prom-client style naming).
_NODEJS_RUNTIME_METRICS = (
    "process_cpu_seconds_rate", "process_resident_memory_bytes",
    "process_heap_bytes", "process_external_memory_bytes",
    "eventloop_latency_p50", "eventloop_latency_p99",
    "http_request_duration_sum", "http_request_duration_count",
    "http_request_size_mean", "http_response_size_mean",
    "tcp_connections_open", "tcp_connections_rate",
    "dns_lookups_rate", "socket_io_packets_rate",
    "express_middleware_time_mean", "express_router_time_mean",
    "promclient_scrape_duration", "logger_lines_rate",
    "settings_reload_count", "healthcheck_latency_ms",
    "module_cache_entries", "timers_active", "immediate_queue_depth",
    "uptime_seconds",
)

_PAD_KINDS = ("rate", "cpu", "memory", "latency", "wave")


def _component_pads(names=_NODEJS_RUNTIME_METRICS) -> tuple:
    """Custom-metric tuples for one component's runtime surface."""
    return tuple(
        (name, _runtime_pad(_PAD_KINDS[i % len(_PAD_KINDS)],
                            1.0 + 0.25 * i, phase=0.8 * i))
        for i, name in enumerate(names)
    )


def _web_endpoints() -> tuple[EndpointSpec, ...]:
    """The HTTP surface of the ``web`` component.

    ``Project_id_GET`` is the hot path (opening a project) and carries
    most of the traffic -- it must dominate so its latency statistic
    becomes the most connected metric of the dependency graph.
    """
    return (
        EndpointSpec("Project_id_GET", service_time=0.24, weight=5.0),
        EndpointSpec("project_POST", service_time=0.30, weight=0.8),
        EndpointSpec("project_id_settings_POST", service_time=0.15,
                     weight=0.5),
        EndpointSpec("login_POST", service_time=0.35, weight=0.6),
        EndpointSpec("register_POST", service_time=0.40, weight=0.1),
        EndpointSpec("user_settings_GET", service_time=0.12, weight=0.4),
        EndpointSpec("project_id_download_GET", service_time=0.60,
                     weight=0.3),
        EndpointSpec("static_assets_GET", service_time=0.02, weight=2.0),
    )


#: Storage-engine metric families of the stateful components.
_MONGODB_RUNTIME_METRICS = tuple(
    f"wiredtiger_{name}" for name in (
        "cache_bytes_in", "cache_bytes_out", "cache_dirty_bytes",
        "cache_pages_evicted", "checkpoint_time", "txn_begins",
        "txn_commits", "txn_rollbacks", "block_reads", "block_writes",
        "log_bytes_written", "log_syncs", "cursor_count", "session_count",
    )
) + (
    "oplog_window_hours", "repl_lag_seconds", "asserts_regular",
    "asserts_warning", "page_faults_rate", "ttl_deleted_rate",
    "index_hits_rate", "index_misses_rate", "document_inserted_rate",
    "document_returned_rate", "connections_available",
    "network_num_requests",
)

_POSTGRES_RUNTIME_METRICS = (
    "pg_xact_commit_rate", "pg_xact_rollback_rate", "pg_blks_read_rate",
    "pg_blks_hit_rate", "pg_tup_returned_rate", "pg_tup_fetched_rate",
    "pg_tup_inserted_rate", "pg_tup_updated_rate", "pg_tup_deleted_rate",
    "pg_temp_bytes_rate", "pg_deadlocks_total", "pg_checkpoints_timed",
    "pg_checkpoints_req", "pg_buffers_checkpoint", "pg_buffers_clean",
    "pg_buffers_backend", "pg_wal_bytes_rate", "pg_autovacuum_runs",
    "pg_locks_granted", "pg_locks_waiting", "pg_bgwriter_maxwritten",
    "pg_stat_activity_idle",
)

_REDIS_RUNTIME_METRICS = (
    "redis_connected_clients", "redis_blocked_clients",
    "redis_instantaneous_ops", "redis_total_net_input_rate",
    "redis_total_net_output_rate", "redis_rejected_connections",
    "redis_expired_keys_rate", "redis_keyspace_hit_ratio",
    "redis_rdb_changes_since_save", "redis_aof_rewrite_time",
    "redis_pubsub_channels", "redis_pubsub_patterns",
    "redis_latest_fork_usec", "redis_mem_fragmentation_ratio",
    "redis_loading_flag", "redis_master_repl_offset",
)

_HAPROXY_RUNTIME_METRICS = (
    "haproxy_scur", "haproxy_smax", "haproxy_slim", "haproxy_stot_rate",
    "haproxy_ereq_rate", "haproxy_econ_rate", "haproxy_eresp_rate",
    "haproxy_wretr_rate", "haproxy_wredis_rate", "haproxy_qcur",
    "haproxy_qmax", "haproxy_rate_max", "haproxy_hrsp_2xx_rate",
    "haproxy_hrsp_4xx_rate", "haproxy_hrsp_5xx_rate",
)

#: Per-kind runtime surface attached to every ShareLatex component.
_KIND_PADS = {
    "nodejs": _NODEJS_RUNTIME_METRICS,
    "database": _POSTGRES_RUNTIME_METRICS,   # mongodb overridden below
    "kv-store": _REDIS_RUNTIME_METRICS,
    "loadbalancer": _HAPROXY_RUNTIME_METRICS,
}


def sharelatex_specs() -> list[ComponentSpec]:
    """Component specs for the 15-component ShareLatex topology."""
    specs = _sharelatex_base_specs()
    enriched = []
    for spec in specs:
        if spec.name == "mongodb":
            names = _MONGODB_RUNTIME_METRICS
        else:
            names = _KIND_PADS.get(spec.kind, ())
        if names:
            spec = replace(spec, custom_metrics=spec.custom_metrics
                           + _component_pads(names))
        enriched.append(spec)
    return enriched


def _sharelatex_base_specs() -> list[ComponentSpec]:
    """Topology and endpoint surface, before runtime-metric enrichment."""
    return [
        ComponentSpec(
            name="haproxy", kind="loadbalancer",
            endpoints=(
                EndpointSpec("frontend_http", service_time=0.0015,
                             weight=4.0),
                EndpointSpec("frontend_websocket", service_time=0.0010,
                             weight=1.0),
            ),
            calls=(
                CallSpec("web", ratio=0.80, delay=0.5),
                CallSpec("real-time", ratio=0.20, delay=0.5),
            ),
            concurrency=64, baseline_cpu=1.5, cpu_per_unit_load=35.0,
        ),
        ComponentSpec(
            name="web", kind="nodejs",
            endpoints=_web_endpoints(),
            calls=(
                CallSpec("chat", ratio=0.15, delay=0.5),
                CallSpec("clsi", ratio=0.12, delay=0.8),
                CallSpec("contacts", ratio=0.08, delay=0.5),
                CallSpec("docstore", ratio=0.45, delay=0.5),
                CallSpec("doc-updater", ratio=0.35, delay=0.5),
                CallSpec("filestore", ratio=0.10, delay=0.6),
                CallSpec("spelling", ratio=0.10, delay=0.5),
                CallSpec("tags", ratio=0.07, delay=0.5),
                CallSpec("track-changes", ratio=0.12, delay=0.5),
                CallSpec("postgresql", ratio=0.30, delay=0.4),
                CallSpec("mongodb", ratio=0.60, delay=0.4),
            ),
            instances=2, concurrency=56, baseline_cpu=3.0,
        ),
        ComponentSpec(
            name="real-time", kind="nodejs",
            endpoints=(
                EndpointSpec("applyUpdate_POST", service_time=0.012,
                             weight=3.0),
                EndpointSpec("joinProject_POST", service_time=0.020,
                             weight=1.0),
                EndpointSpec("cursor_POST", service_time=0.004, weight=2.0),
            ),
            calls=(
                CallSpec("doc-updater", ratio=0.70, delay=0.5),
                CallSpec("redis", ratio=1.50, delay=0.4),
            ),
            concurrency=24,
        ),
        ComponentSpec(
            name="chat", kind="nodejs",
            endpoints=(
                EndpointSpec("messages_GET", service_time=0.015, weight=2.0),
                EndpointSpec("messages_POST", service_time=0.020, weight=1.0),
                EndpointSpec("threads_GET", service_time=0.012, weight=0.8),
            ),
            calls=(CallSpec("mongodb", ratio=1.2, delay=0.4),),
        ),
        ComponentSpec(
            name="clsi", kind="nodejs",
            endpoints=(
                EndpointSpec("compile_POST", service_time=0.350, weight=2.0),
                EndpointSpec("compile_status_GET", service_time=0.008,
                             weight=1.0),
                EndpointSpec("output_GET", service_time=0.040, weight=1.0),
            ),
            calls=(
                CallSpec("postgresql", ratio=0.8, delay=0.4),
                CallSpec("filestore", ratio=0.6, delay=0.6),
            ),
            instances=2, concurrency=4, cpu_per_unit_load=85.0,
        ),
        ComponentSpec(
            name="contacts", kind="nodejs",
            endpoints=(
                EndpointSpec("contacts_GET", service_time=0.010, weight=2.0),
                EndpointSpec("contacts_POST", service_time=0.014, weight=1.0),
            ),
            calls=(CallSpec("mongodb", ratio=1.0, delay=0.4),),
        ),
        ComponentSpec(
            name="doc-updater", kind="nodejs",
            endpoints=(
                EndpointSpec("applyUpdate_POST", service_time=0.018,
                             weight=3.0),
                EndpointSpec("flushDoc_POST", service_time=0.030, weight=1.0),
                EndpointSpec("getDoc_GET", service_time=0.010, weight=2.0),
            ),
            calls=(
                CallSpec("redis", ratio=2.2, delay=0.4),
                CallSpec("mongodb", ratio=0.5, delay=0.5),
                CallSpec("track-changes", ratio=0.4, delay=0.6),
            ),
            instances=2, concurrency=16,
        ),
        ComponentSpec(
            name="docstore", kind="nodejs",
            endpoints=(
                EndpointSpec("doc_GET", service_time=0.012, weight=3.0),
                EndpointSpec("doc_POST", service_time=0.018, weight=1.0),
                EndpointSpec("archive_POST", service_time=0.050, weight=0.2),
            ),
            calls=(CallSpec("mongodb", ratio=1.4, delay=0.4),),
        ),
        ComponentSpec(
            name="filestore", kind="nodejs",
            endpoints=(
                EndpointSpec("file_GET", service_time=0.030, weight=2.0),
                EndpointSpec("file_POST", service_time=0.055, weight=1.0),
            ),
            request_bytes=48_000.0,
        ),
        ComponentSpec(
            name="spelling", kind="nodejs",
            endpoints=(
                EndpointSpec("check_POST", service_time=0.022, weight=3.0),
                EndpointSpec("learn_POST", service_time=0.010, weight=0.3),
            ),
            calls=(CallSpec("mongodb", ratio=0.3, delay=0.5),),
        ),
        ComponentSpec(
            name="tags", kind="nodejs",
            endpoints=(
                EndpointSpec("tags_GET", service_time=0.008, weight=2.0),
                EndpointSpec("tags_POST", service_time=0.012, weight=1.0),
            ),
            calls=(CallSpec("mongodb", ratio=1.0, delay=0.4),),
        ),
        ComponentSpec(
            name="track-changes", kind="nodejs",
            endpoints=(
                EndpointSpec("updates_GET", service_time=0.016, weight=1.5),
                EndpointSpec("updates_POST", service_time=0.020, weight=1.0),
                EndpointSpec("diff_GET", service_time=0.045, weight=0.5),
            ),
            calls=(CallSpec("mongodb", ratio=1.1, delay=0.4),),
        ),
        ComponentSpec(
            name="mongodb", kind="database",
            endpoints=(
                EndpointSpec("find", service_time=0.0035, weight=4.0),
                EndpointSpec("insert", service_time=0.0050, weight=1.5),
                EndpointSpec("update", service_time=0.0060, weight=1.5),
                EndpointSpec("aggregate", service_time=0.0150, weight=0.5),
            ),
            concurrency=48, cpu_per_unit_load=70.0,
            baseline_memory_mb=900.0,
        ),
        ComponentSpec(
            name="postgresql", kind="database",
            endpoints=(
                EndpointSpec("select", service_time=0.0030, weight=3.0),
                EndpointSpec("insert", service_time=0.0055, weight=1.0),
            ),
            concurrency=32, baseline_memory_mb=600.0,
        ),
        ComponentSpec(
            name="redis", kind="kv-store",
            endpoints=(
                EndpointSpec("get", service_time=0.0004, weight=3.0),
                EndpointSpec("set", service_time=0.0006, weight=2.0),
                EndpointSpec("publish", service_time=0.0005, weight=1.0),
            ),
            concurrency=96, baseline_cpu=1.0, cpu_per_unit_load=45.0,
            baseline_memory_mb=250.0,
        ),
    ]


def build_sharelatex_application() -> Application:
    """The ShareLatex application with haproxy as the single entry point."""
    return Application(
        "sharelatex", sharelatex_specs(), entrypoints={"haproxy": 1.0},
        sla_path=("haproxy", "web", "mongodb"),
    )
