"""Application models used in the paper's evaluation.

* :mod:`repro.apps.sharelatex` -- ShareLatex, the collaborative LaTeX
  editor of case study #1: a KV-store (redis), a load balancer
  (haproxy), two databases (mongodb, postgresql) and 11 node.js
  components (paper Section 4.1).
* :mod:`repro.apps.openstack` -- OpenStack as deployed by Kolla for
  case study #2, with the 16 dependency-graph components of Table 5 and
  the fault analog of Launchpad bug #1533942 (the Neutron Open vSwitch
  agent crash that leaves VM launches failing).
* :mod:`repro.apps.nginx` -- the single-component static-file web
  server used by the Figure 5 tracing-overhead experiment.
"""

from repro.apps.nginx import build_nginx_application, run_ab_benchmark
from repro.apps.openstack import (
    OPENSTACK_COMPONENTS,
    build_openstack_application,
    full_metric_catalog,
    openstack_fault_plan,
)
from repro.apps.sharelatex import (
    SHARELATEX_COMPONENTS,
    build_sharelatex_application,
)

__all__ = [
    "OPENSTACK_COMPONENTS",
    "SHARELATEX_COMPONENTS",
    "build_nginx_application",
    "build_openstack_application",
    "build_sharelatex_application",
    "full_metric_catalog",
    "openstack_fault_plan",
    "run_ab_benchmark",
]
