"""nginx static-file model for the tracing-overhead experiment (Fig. 5).

The paper measures the worst-case overhead of the call-graph capture
techniques by serving 10 000 requests for a small static file with
Apache Benchmark against nginx (Section 6.1.3): serving such a file is
so cheap that any per-request tracing cost is maximally visible.

This module reproduces the experiment on the discrete-event kernel: a
closed-loop client with fixed concurrency issues requests against a
single web-server component; each request's service time is inflated by
the tracing technique's cost model.  The reported quantity is the wall
time to complete the request batch, as in Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulator.app import Application
from repro.simulator.component import ComponentSpec, EndpointSpec
from repro.simulator.kernel import EventLoop
from repro.tracing.overhead import TRACING_TECHNIQUES, TracingTechnique

#: Mean service time of nginx for a small static file, seconds.  With
#: concurrency 8 this yields ~10k requests in ~0.35 s, the regime of
#: the paper's Figure 5.
NGINX_STATIC_FILE_SERVICE_TIME = 0.00028


def build_nginx_application() -> Application:
    """A single-component nginx application (for API completeness)."""
    spec = ComponentSpec(
        name="nginx", kind="webserver",
        endpoints=(EndpointSpec("static_GET",
                                service_time=NGINX_STATIC_FILE_SERVICE_TIME),),
        concurrency=8,
    )
    return Application("nginx", [spec])


@dataclass(frozen=True)
class ABResult:
    """Outcome of one Apache-Benchmark-style closed-loop run."""

    technique: str
    n_requests: int
    concurrency: int
    completion_time: float
    mean_latency: float

    @property
    def throughput(self) -> float:
        """Requests per second over the whole run."""
        return self.n_requests / self.completion_time


def run_ab_benchmark(
    technique: TracingTechnique | str = "native",
    n_requests: int = 10_000,
    concurrency: int = 8,
    base_service_time: float = NGINX_STATIC_FILE_SERVICE_TIME,
    seed: int = 0,
) -> ABResult:
    """Serve ``n_requests`` under ``technique`` and time the batch.

    A closed loop: ``concurrency`` workers each hold one request in
    flight; when a request completes the worker immediately issues the
    next.  Service times are log-normal around the (technique-inflated)
    base, matching the heavy right tail of real static-file serving.
    """
    if isinstance(technique, str):
        technique = TRACING_TECHNIQUES[technique]
    if n_requests < 1 or concurrency < 1:
        raise ValueError("n_requests and concurrency must be >= 1")

    rng = np.random.default_rng(seed)
    loop = EventLoop()
    state = {"issued": 0, "done": 0, "latency_sum": 0.0}
    effective_base = base_service_time \
        + technique.request_overhead(base_service_time)

    def issue_request() -> None:
        if state["issued"] >= n_requests:
            return
        state["issued"] += 1
        service = effective_base * float(rng.lognormal(0.0, 0.25))
        state["latency_sum"] += service
        loop.schedule(service, complete_request)

    def complete_request() -> None:
        state["done"] += 1
        issue_request()

    for _ in range(min(concurrency, n_requests)):
        issue_request()
    loop.run()

    return ABResult(
        technique=technique.name,
        n_requests=n_requests,
        concurrency=concurrency,
        completion_time=loop.now,
        mean_latency=state["latency_sum"] / n_requests,
    )
