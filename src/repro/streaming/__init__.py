"""Streaming analysis engine: Sieve as a continuously running service.

The batch pipeline (:class:`repro.core.sieve.Sieve`) analyzes one
completed :class:`~repro.simulator.app.LoadedRun`.  This subpackage
turns load -> reduce -> identify into an online loop over live
ingestion, the deployment model the paper's Telegraf -> InfluxDB
collector implies and its §9 names as future work:

* :mod:`repro.streaming.bus` -- batched point ingestion, fanned out to
  subscribers in vectorized flushes;
* :mod:`repro.streaming.window` -- bounded per-component ring-buffer
  windows (retention by age and count);
* :mod:`repro.streaming.drift` -- behaviour-drift detection against
  frozen cluster baselines, closing the documented blind spot of
  :mod:`repro.core.incremental`;
* :mod:`repro.streaming.analyzer` -- windowed reduce + identify with
  incremental reuse and drift-triggered re-clustering;
* :mod:`repro.streaming.engine` -- the tick-driven engine gluing bus,
  windows, analyzer and consumers together;
* :mod:`repro.streaming.consumers` -- live case-study consumers
  (autoscaling guide re-election, window-diff RCA);
* :mod:`repro.streaming.driver` -- lock-step co-simulation of an
  application and the engine, with an exact batch result for the same
  trace as the convergence reference.
"""

from repro.streaming.analyzer import (
    StreamingStats,
    WindowAnalysis,
    WindowAnalyzer,
)
from repro.streaming.bus import BusStats, IngestionBus
from repro.streaming.consumers import (
    LiveScalingPolicy,
    RebindEvent,
    TriggeredRCAReport,
    WindowDiffRCA,
)
from repro.streaming.drift import DriftDetector, DriftReading
from repro.streaming.driver import SimulationStreamDriver
from repro.streaming.engine import StreamingSieve
from repro.streaming.window import RingSeries, WindowStore

__all__ = [
    "BusStats",
    "DriftDetector",
    "DriftReading",
    "IngestionBus",
    "LiveScalingPolicy",
    "RebindEvent",
    "RingSeries",
    "SimulationStreamDriver",
    "StreamingSieve",
    "StreamingStats",
    "TriggeredRCAReport",
    "WindowAnalysis",
    "WindowAnalyzer",
    "WindowDiffRCA",
    "WindowStore",
]
