"""The ingestion bus: batched point writes from collectors to windows.

Collectors (:class:`repro.metrics.collector.Collector` in push mode, or
anything else speaking the ``publish`` protocol) hand the bus one
scrape batch at a time.  The bus buffers points per (component, metric)
and periodically *flushes*: each buffered run of points is converted to
a pair of numpy arrays once and delivered to every subscriber in a
single vectorized call -- the same batching discipline a real
Telegraf -> InfluxDB hop applies to amortize per-write overhead.

Subscribers are either callables ``fn(component, metric, times,
values)`` or objects with that signature as an ``ingest`` method (a
:class:`~repro.streaming.window.WindowStore`, a metered
:class:`~repro.metrics.store.MetricsStore` adapter, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class BusStats:
    """Ingestion-side observability counters."""

    points_published: int = 0
    batches_published: int = 0
    flushes: int = 0
    points_flushed: int = 0
    rejected_points: int = 0
    """Points dropped because they arrived out of order for their key."""

    def as_dict(self) -> dict:
        return {
            "points_published": self.points_published,
            "batches_published": self.batches_published,
            "flushes": self.flushes,
            "points_flushed": self.points_flushed,
            "rejected_points": self.rejected_points,
        }


@dataclass
class _Buffer:
    """Pending points of one (component, metric) key."""

    times: list = field(default_factory=list)
    values: list = field(default_factory=list)


class IngestionBus:
    """Buffers point writes and fans batches out to subscribers."""

    def __init__(self, flush_threshold: int = 4096):
        """``flush_threshold`` caps buffered points before an automatic
        flush (explicit :meth:`flush` calls still drive the cadence)."""
        if flush_threshold < 1:
            raise ValueError("flush_threshold must be >= 1")
        self.flush_threshold = flush_threshold
        self.stats = BusStats()
        self._buffers: dict[tuple[str, str], _Buffer] = {}
        self._pending = 0
        self._sinks: list = []

    # -- wiring --------------------------------------------------------

    def subscribe(self, sink) -> None:
        """Register a subscriber (callable or object with ``ingest``)."""
        if callable(sink):
            self._sinks.append(sink)
        elif hasattr(sink, "ingest"):
            self._sinks.append(sink.ingest)
        else:
            raise TypeError(
                "subscriber must be callable or expose .ingest()"
            )

    @property
    def subscriber_count(self) -> int:
        return len(self._sinks)

    # -- publishing ----------------------------------------------------

    def publish(self, component: str, time: float,
                metrics: dict[str, float]) -> None:
        """Accept one component scrape batch (the collector protocol)."""
        for metric, value in metrics.items():
            buffer = self._buffers.setdefault((component, metric),
                                              _Buffer())
            if buffer.times and time < buffer.times[-1]:
                self.stats.rejected_points += 1
                continue
            buffer.times.append(float(time))
            buffer.values.append(float(value))
            self._pending += 1
            self.stats.points_published += 1
        self.stats.batches_published += 1
        if self._pending >= self.flush_threshold:
            self.flush()

    def publish_points(self, component: str, metric: str,
                       times, values) -> None:
        """Accept a pre-batched run of points for one metric."""
        t = np.asarray(times, dtype=float).reshape(-1)
        v = np.asarray(values, dtype=float).reshape(-1)
        if t.size != v.size:
            raise ValueError("times and values must have equal length")
        if t.size == 0:
            return
        buffer = self._buffers.setdefault((component, metric), _Buffer())
        if np.any(np.diff(t) < 0) \
                or (buffer.times and t[0] < buffer.times[-1]):
            self.stats.rejected_points += int(t.size)
            return
        buffer.times.extend(t.tolist())
        buffer.values.extend(v.tolist())
        self._pending += int(t.size)
        self.stats.points_published += int(t.size)
        self.stats.batches_published += 1
        if self._pending >= self.flush_threshold:
            self.flush()

    # -- delivery ------------------------------------------------------

    @property
    def pending_points(self) -> int:
        """Points buffered but not yet delivered."""
        return self._pending

    def flush(self) -> int:
        """Deliver every buffered batch to every subscriber.

        Returns the number of points delivered.  Empty flushes are
        cheap, so callers can flush on a timer without guarding.
        """
        if not self._pending:
            return 0
        delivered = 0
        buffers, self._buffers = self._buffers, {}
        self._pending = 0
        items = list(buffers.items())
        for index, ((component, metric), buffer) in enumerate(items):
            t = np.asarray(buffer.times, dtype=float)
            v = np.asarray(buffer.values, dtype=float)
            try:
                for sink in self._sinks:
                    sink(component, metric, t, v)
            except Exception:
                # Requeue everything not yet delivered so one bad
                # subscriber/batch does not drop other keys' points.
                for key, pending in items[index + 1:]:
                    self._buffers[key] = pending
                    self._pending += len(pending.times)
                self.stats.flushes += 1
                self.stats.points_flushed += delivered
                raise
            delivered += t.size
        self.stats.flushes += 1
        self.stats.points_flushed += delivered
        return delivered
