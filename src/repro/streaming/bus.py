"""The ingestion bus: batched point writes from collectors to windows.

Collectors (:class:`repro.metrics.collector.Collector` in push mode, or
anything else speaking the ``publish`` protocol) hand the bus one
scrape batch at a time.  The bus buffers points per (component, metric)
and periodically *flushes*: each buffered run of points is converted to
a pair of numpy arrays once and delivered to every subscriber in a
single vectorized call -- the same batching discipline a real
Telegraf -> InfluxDB hop applies to amortize per-write overhead.

Subscribers are either callables ``fn(component, metric, times,
values)`` or objects with that signature as an ``ingest`` method (a
:class:`~repro.streaming.window.WindowStore`, a
:class:`~repro.persistence.backend.StorageBackend`, ...).

Two reliability features wrap the buffer:

* **write-ahead journal** -- with :meth:`attach_journal`, every batch
  is appended to an :class:`~repro.persistence.journal.IngestJournal`
  *before* it is handed to any subscriber, so a killed process can be
  resumed losslessly by replaying the journal;
* **backpressure** -- with ``max_pending`` set, a stalled consumer can
  no longer grow the buffers unboundedly: the configured overflow
  policy sheds load (``drop_oldest`` discards the globally oldest
  buffered points, ``downsample`` halves every buffered series keeping
  the newest samples), and the shed counts surface in
  :class:`BusStats`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

#: Valid overflow policies for a bounded bus.
OVERFLOW_POLICIES = ("drop_oldest", "downsample")


@dataclass
class BusStats:
    """Ingestion-side observability counters."""

    points_published: int = 0
    batches_published: int = 0
    flushes: int = 0
    points_flushed: int = 0
    rejected_points: int = 0
    """Points dropped because they arrived out of order for their key."""

    overflow_dropped: int = 0
    """Points shed by the ``drop_oldest`` backpressure policy."""

    overflow_downsampled: int = 0
    """Points shed by the ``downsample`` backpressure policy."""

    overflow_events: int = 0
    """Times the ``max_pending`` bound was hit (shedding passes)."""

    journaled_batches: int = 0
    """Batches written to the attached write-ahead journal."""

    resume_clipped: int = 0
    """Re-published points dropped by the crash-resume overlap clip."""

    def as_dict(self) -> dict:
        return {
            "points_published": self.points_published,
            "batches_published": self.batches_published,
            "flushes": self.flushes,
            "points_flushed": self.points_flushed,
            "rejected_points": self.rejected_points,
            "overflow_dropped": self.overflow_dropped,
            "overflow_downsampled": self.overflow_downsampled,
            "overflow_events": self.overflow_events,
            "journaled_batches": self.journaled_batches,
            "resume_clipped": self.resume_clipped,
        }


@dataclass
class _Buffer:
    """Pending points of one (component, metric) key.

    ``start`` marks the live region: backpressure shedding advances it
    instead of popping from the list front (O(1) per shed point), and
    the dead prefix is compacted away once it dominates the list so a
    shedding bus holds bounded memory.  ``last_time`` carries the
    ordering guard independently of the list contents, so compaction
    cannot loosen the monotonicity check."""

    times: list = field(default_factory=list)
    values: list = field(default_factory=list)
    start: int = 0
    last_time: float = float("-inf")

    def __len__(self) -> int:
        return len(self.times) - self.start

    def compact(self) -> None:
        """Free the dead prefix when it outweighs the live region."""
        if self.start and self.start * 2 >= len(self.times):
            del self.times[:self.start]
            del self.values[:self.start]
            self.start = 0


class IngestionBus:
    """Buffers point writes and fans batches out to subscribers."""

    def __init__(self, flush_threshold: int = 4096,
                 max_pending: int = 0,
                 overflow_policy: str = "drop_oldest"):
        """``flush_threshold`` caps buffered points before an automatic
        flush (explicit :meth:`flush` calls still drive the cadence).
        ``max_pending`` (0 = unbounded) bounds the buffers even when
        flushing is stalled; ``overflow_policy`` picks what to shed."""
        if flush_threshold < 1:
            raise ValueError("flush_threshold must be >= 1")
        if max_pending < 0:
            raise ValueError("max_pending must be >= 0")
        if overflow_policy not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {overflow_policy!r}"
            )
        self.flush_threshold = flush_threshold
        self.max_pending = max_pending
        self.overflow_policy = overflow_policy
        self.stats = BusStats()
        self._buffers: dict[tuple[str, str], _Buffer] = {}
        self._high_water: dict[tuple[str, str], float] = {}
        """Per-key newest admitted timestamp, surviving flushes.  A
        flush discards the buffer (and its ``last_time``), but the
        downstream rings are append-only forever -- so the ordering
        guard must span the bus's whole lifetime, or a late sample
        arriving in a *later* flush cycle (an HTTP sender replaying
        old data) would corrupt delivery instead of being rejected."""

        self._pending = 0
        self._sinks: list = []
        self._journal = None
        self._resume_clip: dict[tuple[str, str], float] | None = None
        self._flush_seconds = None
        self._tracer = None

    # -- wiring --------------------------------------------------------

    def subscribe(self, sink) -> None:
        """Register a subscriber (callable or object with ``ingest``)."""
        if callable(sink):
            self._sinks.append(sink)
        elif hasattr(sink, "ingest"):
            self._sinks.append(sink.ingest)
        else:
            raise TypeError(
                "subscriber must be callable or expose .ingest()"
            )

    @property
    def subscriber_count(self) -> int:
        return len(self._sinks)

    def attach_journal(self, journal) -> None:
        """Write every flushed batch ahead of subscriber delivery.

        ``journal`` is an :class:`repro.persistence.journal.IngestJournal`
        (or anything with ``append_batch``/``commit``).
        """
        self._journal = journal

    def attach_telemetry(self, telemetry) -> None:
        """Time flushes into the given :class:`repro.obs.Telemetry`.

        Each non-empty flush is recorded as an ``ingest`` phase span
        (folded into the next window's trace) and observed by the
        ``repro_bus_flush_seconds`` histogram.  Lifetime counters are
        *not* duplicated here -- the engine samples :attr:`stats` via a
        scrape-time collector instead, keeping the publish path
        untouched.
        """
        self._tracer = telemetry.tracer
        self._flush_seconds = telemetry.registry.histogram(
            "repro_bus_flush_seconds",
            "Wall time of non-empty ingestion-bus flushes",
        )

    @property
    def journal(self):
        """The attached write-ahead journal, or None.

        Exposed so lifecycle hooks (checkpoint-epoch journal rotation)
        can reach the journal without threading it separately."""
        return self._journal

    def arm_resume_clip(self,
                        newest_by_key: dict[tuple[str, str], float]
                        ) -> None:
        """Drop re-published samples a resumed run already holds.

        Crash-resume support: the resumed driver re-simulates the
        partially journaled scrape cycle and re-publishes it; clipping
        at the bus keeps those duplicates out of the journal, the
        durable backend *and* the rings in one place (a second crash
        would otherwise replay them twice).  ``newest_by_key`` maps
        (component, metric) to the newest journaled timestamp; each
        entry self-disarms once publishing moves past it.
        """
        self._resume_clip = dict(newest_by_key) or None

    def _clip_resumed(self, component: str, metric: str, time) -> bool:
        """True when a re-published sample must be dropped."""
        if self._resume_clip is None:
            return False
        key = (component, metric)
        bound = self._resume_clip.get(key)
        if bound is None:
            return False
        if time <= bound:
            return True
        del self._resume_clip[key]
        if not self._resume_clip:
            self._resume_clip = None
        return False

    # -- publishing ----------------------------------------------------

    def _buffer(self, component: str, metric: str) -> _Buffer:
        """The key's pending buffer, seeded with its lifetime guard."""
        key = (component, metric)
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = _Buffer(last_time=self._high_water.get(
                key, float("-inf")))
            self._buffers[key] = buffer
        return buffer

    def publish(self, component: str, time: float,
                metrics: dict[str, float]) -> None:
        """Accept one component scrape batch (the collector protocol)."""
        for metric, value in metrics.items():
            if self._clip_resumed(component, metric, time):
                self.stats.resume_clipped += 1
                continue
            buffer = self._buffer(component, metric)
            if time < buffer.last_time:
                self.stats.rejected_points += 1
                continue
            buffer.times.append(float(time))
            buffer.values.append(float(value))
            buffer.last_time = float(time)
            self._high_water[(component, metric)] = float(time)
            self._pending += 1
            self.stats.points_published += 1
        self.stats.batches_published += 1
        self._enforce_bounds()

    def publish_points(self, component: str, metric: str,
                       times, values) -> None:
        """Accept a pre-batched run of points for one metric."""
        t = np.asarray(times, dtype=float).reshape(-1)
        v = np.asarray(values, dtype=float).reshape(-1)
        if t.size != v.size:
            raise ValueError("times and values must have equal length")
        if t.size == 0:
            return
        while t.size and self._clip_resumed(component, metric, t[0]):
            self.stats.resume_clipped += 1
            t, v = t[1:], v[1:]
        if t.size == 0:
            return
        buffer = self._buffer(component, metric)
        if np.any(np.diff(t) < 0) or t[0] < buffer.last_time:
            self.stats.rejected_points += int(t.size)
            return
        buffer.times.extend(t.tolist())
        buffer.values.extend(v.tolist())
        buffer.last_time = float(t[-1])
        self._high_water[(component, metric)] = float(t[-1])
        self._pending += int(t.size)
        self.stats.points_published += int(t.size)
        self.stats.batches_published += 1
        self._enforce_bounds()

    def _enforce_bounds(self) -> None:
        # A flush that can run drains everything, so try it first --
        # backpressure must only shed points a flush cannot deliver
        # (max_pending below the flush threshold, or a stalled flush
        # cadence), never data a healthy subscriber would have taken.
        if self._pending >= self.flush_threshold:
            self.flush()
        if self.max_pending and self._pending > self.max_pending:
            self.stats.overflow_events += 1
            self._shed()

    # -- backpressure --------------------------------------------------

    def _shed(self) -> None:
        """Bring pending points back under ``max_pending``."""
        if self.overflow_policy == "drop_oldest":
            self._shed_oldest()
        else:
            self._shed_downsample()

    def _shed_oldest(self) -> None:
        """Discard the globally oldest buffered points."""
        heap = [
            (buffer.times[buffer.start], key)
            for key, buffer in self._buffers.items()
            if len(buffer)
        ]
        heapq.heapify(heap)
        while self._pending > self.max_pending and heap:
            _oldest, key = heapq.heappop(heap)
            buffer = self._buffers[key]
            buffer.start += 1
            self._pending -= 1
            self.stats.overflow_dropped += 1
            if len(buffer):
                heapq.heappush(
                    heap, (buffer.times[buffer.start], key)
                )
        for buffer in self._buffers.values():
            buffer.compact()

    def _shed_downsample(self) -> None:
        """Halve every buffered series, keeping the newest samples."""
        while self._pending > self.max_pending:
            shed_any = False
            for buffer in self._buffers.values():
                live = len(buffer)
                if live < 2:
                    continue
                # Keep every second sample, anchored on the newest one
                # (last-value semantics survive the thinning).
                parity = (live - 1) % 2
                kept_t = buffer.times[buffer.start + parity::2]
                kept_v = buffer.values[buffer.start + parity::2]
                dropped = live - len(kept_t)
                buffer.times, buffer.values = kept_t, kept_v
                buffer.start = 0
                self._pending -= dropped
                self.stats.overflow_downsampled += dropped
                shed_any = True
            if not shed_any:
                break  # every buffer is a single point; nothing to thin

    # -- delivery ------------------------------------------------------

    @property
    def pending_points(self) -> int:
        """Points buffered but not yet delivered."""
        return self._pending

    def newest_ingested(self) -> float | None:
        """Newest timestamp ever admitted, across every key.

        Spans the bus's whole lifetime (the ordering high-water, not
        the transient buffers), so it covers points still pending a
        flush and points already delivered or shed.  None before any
        point was admitted.  Wall-clock serve polling schedules
        analysis off this: the engine's own horizon only advances on
        flush, which would deadlock a bus stuck at ``max_pending``
        below the flush threshold.
        """
        if not self._high_water:
            return None
        return max(self._high_water.values())

    def flush(self) -> int:
        """Deliver every buffered batch to every subscriber.

        With a journal attached, each batch is appended (and the
        journal committed) before subscribers see it -- the write-ahead
        contract.  Returns the number of points delivered.  Empty
        flushes are cheap, so callers can flush on a timer without
        guarding.
        """
        if not self._pending:
            return 0
        if self._tracer is None:
            return self._flush_impl()
        with self._tracer.span("ingest") as span:
            delivered = self._flush_impl()
        self._flush_seconds.observe(span.elapsed)
        return delivered

    def _flush_impl(self) -> int:
        delivered = 0
        buffers, self._buffers = self._buffers, {}
        self._pending = 0
        items = [
            (key, buffer) for key, buffer in buffers.items() if len(buffer)
        ]
        try:
            for index, ((component, metric), buffer) in enumerate(items):
                t = np.asarray(buffer.times[buffer.start:], dtype=float)
                v = np.asarray(buffer.values[buffer.start:], dtype=float)
                try:
                    if self._journal is not None:
                        self._journal.append_batch(component, metric,
                                                   t, v)
                        self.stats.journaled_batches += 1
                except Exception:
                    # A failed journal write (disk full, closed handle)
                    # must not lose data: the current batch was neither
                    # journaled nor delivered, so requeue it along with
                    # everything behind it.
                    for key, pending in items[index:]:
                        self._buffers[key] = pending
                        self._pending += len(pending)
                    self.stats.flushes += 1
                    self.stats.points_flushed += delivered
                    raise
                try:
                    for sink in self._sinks:
                        sink(component, metric, t, v)
                except Exception:
                    # Requeue everything not yet delivered so one bad
                    # subscriber/batch does not drop other keys'
                    # points.  The failing batch itself is NOT retried
                    # (a sink that already ingested it would receive
                    # it twice); it stays in the write-ahead journal,
                    # so a later restore resurrects it -- recovery,
                    # not loss.
                    for key, pending in items[index + 1:]:
                        self._buffers[key] = pending
                        self._pending += len(pending)
                    self.stats.flushes += 1
                    self.stats.points_flushed += delivered
                    raise
                delivered += t.size
        finally:
            if self._journal is not None:
                self._journal.commit()
        self.stats.flushes += 1
        self.stats.points_flushed += delivered
        return delivered
