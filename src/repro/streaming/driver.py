"""Co-simulation driver: advance the application, let the engine drink.

Glues a :class:`~repro.simulator.app.LiveRunSession` (the step-wise
load path that ``Application.load`` itself is built on) to a
:class:`~repro.streaming.engine.StreamingSieve`: the collector pushes
every scrape batch onto the engine's ingestion bus, the driver advances
the simulation one hop at a time and ticks the engine with the tracer's
current call graph in between.

Because batch and streaming runs share the session code path, a driver
run with ``record_frame=True`` can also hand back the *exact* batch
result (:meth:`batch_result`) for the same trace and seed -- the basis
of the streaming-vs-batch convergence guarantee.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.core.config import StreamingConfig
from repro.core.results import SieveResult
from repro.core.sieve import Sieve
from repro.simulator.app import Application
from repro.simulator.faults import FaultPlan
from repro.streaming.analyzer import WindowAnalysis
from repro.streaming.engine import StreamingSieve


class SimulationStreamDriver:
    """Runs an application and the streaming engine in lock-step."""

    def __init__(
        self,
        application: Application,
        workload_fn,
        config: StreamingConfig | None = None,
        seed: int = 1,
        workload_name: str = "stream",
        fault_plan: FaultPlan | None = None,
        record_frame: bool = True,
        engine: StreamingSieve | None = None,
    ):
        """``record_frame=False`` drops the cumulative batch frame so a
        long-running stream keeps bounded memory (but loses
        :meth:`batch_result`)."""
        self.config = config or StreamingConfig()
        self.application = application
        self.engine = engine or StreamingSieve(
            config=self.config, seed=seed,
            application=application.name, workload=workload_name,
        )
        self.engine.application = application.name
        self.engine.workload = workload_name
        self.record_frame = record_frame
        self.seed = seed
        self._sla_cursor = 0
        sieve_cfg = self.config.sieve
        self.session = application.open_session(
            workload_fn,
            seed=seed,
            dt=sieve_cfg.simulation_dt,
            scrape_interval=sieve_cfg.grid_interval,
            fault_plan=fault_plan,
            workload_name=workload_name,
            warmup=sieve_cfg.warmup,
            bus=self.engine.bus,
            record_frame=record_frame,
        )

    @property
    def now(self) -> float:
        return self.session.now

    def run(
        self,
        duration: float,
        on_window: Callable[[WindowAnalysis], None] | None = None,
    ) -> list[WindowAnalysis]:
        """Advance ``duration`` simulated seconds in engine-hop steps.

        ``on_window`` is invoked for every produced analysis (in
        addition to the engine's subscribed consumers).  Returns all
        analyses of this call, in order.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        produced: list[WindowAnalysis] = []
        min_count = self.config.sieve.callgraph_min_connections
        remaining = duration
        while remaining > 1e-9:
            # The engine owns the live cadence: with the adaptive hop
            # enabled it stretches between ticks as the system quiets
            # down, otherwise it is the fixed config.hop.
            step = min(self.engine.tick_interval(), remaining)
            self.session.advance(step)
            remaining -= step
            self._forward_sla_samples()
            analysis = self.engine.offer(
                self.session.now, self.session.call_graph(min_count)
            )
            if analysis is not None:
                produced.append(analysis)
                if on_window is not None:
                    on_window(analysis)
        return produced

    def fast_forward(self, to_time: float) -> None:
        """Advance the seeded simulation to ``to_time`` silently.

        Crash-resume support: the replayed ingest journal already holds
        every sample up to the dead run's last flush, so the resumed
        driver re-simulates that stretch (identical trace, same seed)
        with the bus detached instead of re-publishing it.  Pass
        :meth:`StreamingSieve.resume_horizon` -- scrapes past that
        instant were never journaled and must be re-published by the
        normal :meth:`run` that follows.
        """
        if to_time <= self.session.now:
            return
        bus = self.session.collector.bus
        self.session.collector.bus = None
        try:
            self.session.advance(to_time - self.session.now)
        finally:
            self.session.collector.bus = bus

    def resume_run(
        self,
        duration: float,
        on_window: Callable[[WindowAnalysis], None] | None = None,
    ) -> list[WindowAnalysis]:
        """Continue a crash-restored engine for ``duration`` seconds.

        Composes the two steps a resumed run needs before normal
        hopping: :meth:`fast_forward` past everything the replayed
        journal already holds (a mid-hop crash leaves journaled
        samples *newer* than the last engine tick, so the cutoff is
        the max of both), then a short first step that realigns the
        engine ticks with the hop grid the dead run was on -- so the
        resumed windows land on exactly the spans an uninterrupted
        run would have analyzed.
        """
        engine = self.engine
        target = engine.resume_horizon()
        if target is not None and target > self.session.now:
            sieve_cfg = self.config.sieve
            # Rewind the fast-forward to the start of the horizon's
            # scrape cycle: an auto-flush can land mid-cycle, leaving
            # the journal with only part of that cycle's exporters.
            # Re-publishing the whole cycle recovers the missing
            # samples; the bus-level resume clip (armed by
            # restore_engine from the replayed journal) keeps the
            # already-journaled half out of the journal, the backend
            # and the rings.
            anchor = self.session.now
            cycles = math.floor((target - anchor)
                                / sieve_cfg.grid_interval)
            cycle_start = anchor + cycles * sieve_cfg.grid_interval
            self.fast_forward(cycle_start - sieve_cfg.simulation_dt)
            # The stretch between the rewound clock and the horizon
            # was already streamed by the dead run; re-simulating it
            # must not consume the caller's duration budget.
            duration += max(target - self.session.now, 0.0)
        produced: list[WindowAnalysis] = []
        hop = engine.tick_interval()
        if engine.last_offer is not None and duration > 1e-9:
            ahead = (self.session.now - engine.last_offer) % hop
            if 1e-9 < ahead < hop - 1e-9:
                first = min(hop - ahead, duration)
                produced += self.run(first, on_window=on_window)
                duration -= first
        if duration > 1e-9:
            produced += self.run(duration, on_window=on_window)
        return produced

    def _forward_sla_samples(self) -> None:
        """Hand newly recorded end-to-end latencies to the engine.

        Consumers judging windows against an SLA (the auto-triggered
        :class:`~repro.streaming.consumers.WindowDiffRCA`) read them
        back via :meth:`StreamingSieve.latencies_between`.
        """
        samples = self.session.sla_samples
        while self._sla_cursor < len(samples):
            time, latency = samples[self._sla_cursor]
            self.engine.observe_latency(time, latency)
            self._sla_cursor += 1

    def final_analysis(self) -> WindowAnalysis | None:
        """Force a full-retention analysis at the current time.

        With retention covering the whole run, the resulting window
        sees every recorded sample -- the streaming counterpart of the
        batch analysis over the completed trace.
        """
        min_count = self.config.sieve.callgraph_min_connections
        return self.engine.force_analysis(
            self.session.now, self.session.call_graph(min_count)
        )

    def close(self) -> None:
        """Shut the engine's shard executor down (idempotent)."""
        self.engine.close()

    def __enter__(self) -> "SimulationStreamDriver":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def batch_result(self, seed: int | None = None) -> SieveResult:
        """The offline ``Sieve`` result for the trace just streamed.

        Seals the session and runs the batch analysis over the full
        recorded frame -- bit-identical input to what ``Sieve.run``
        would have recorded for the same seed, because batch loading is
        the same session advanced in one hop.
        """
        if not self.record_frame:
            raise ValueError(
                "batch_result() needs record_frame=True at construction"
            )
        run = self.session.finish(
            min_count=self.config.sieve.callgraph_min_connections
        )
        sieve = Sieve(self.application, config=self.config.sieve)
        return sieve.analyze(run, seed=self.seed if seed is None else seed)
