"""Co-simulation driver: advance the application, let the engine drink.

Glues a :class:`~repro.simulator.app.LiveRunSession` (the step-wise
load path that ``Application.load`` itself is built on) to a
:class:`~repro.streaming.engine.StreamingSieve`: the collector pushes
every scrape batch onto the engine's ingestion bus, the driver advances
the simulation one hop at a time and ticks the engine with the tracer's
current call graph in between.

Because batch and streaming runs share the session code path, a driver
run with ``record_frame=True`` can also hand back the *exact* batch
result (:meth:`batch_result`) for the same trace and seed -- the basis
of the streaming-vs-batch convergence guarantee.
"""

from __future__ import annotations

from typing import Callable

from repro.core.config import StreamingConfig
from repro.core.results import SieveResult
from repro.core.sieve import Sieve
from repro.simulator.app import Application
from repro.simulator.faults import FaultPlan
from repro.streaming.analyzer import WindowAnalysis
from repro.streaming.engine import StreamingSieve


class SimulationStreamDriver:
    """Runs an application and the streaming engine in lock-step."""

    def __init__(
        self,
        application: Application,
        workload_fn,
        config: StreamingConfig | None = None,
        seed: int = 1,
        workload_name: str = "stream",
        fault_plan: FaultPlan | None = None,
        record_frame: bool = True,
        engine: StreamingSieve | None = None,
    ):
        """``record_frame=False`` drops the cumulative batch frame so a
        long-running stream keeps bounded memory (but loses
        :meth:`batch_result`)."""
        self.config = config or StreamingConfig()
        self.application = application
        self.engine = engine or StreamingSieve(
            config=self.config, seed=seed,
            application=application.name, workload=workload_name,
        )
        self.engine.application = application.name
        self.engine.workload = workload_name
        self.record_frame = record_frame
        self.seed = seed
        sieve_cfg = self.config.sieve
        self.session = application.open_session(
            workload_fn,
            seed=seed,
            dt=sieve_cfg.simulation_dt,
            scrape_interval=sieve_cfg.grid_interval,
            fault_plan=fault_plan,
            workload_name=workload_name,
            warmup=sieve_cfg.warmup,
            bus=self.engine.bus,
            record_frame=record_frame,
        )

    @property
    def now(self) -> float:
        return self.session.now

    def run(
        self,
        duration: float,
        on_window: Callable[[WindowAnalysis], None] | None = None,
    ) -> list[WindowAnalysis]:
        """Advance ``duration`` simulated seconds in engine-hop steps.

        ``on_window`` is invoked for every produced analysis (in
        addition to the engine's subscribed consumers).  Returns all
        analyses of this call, in order.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        produced: list[WindowAnalysis] = []
        min_count = self.config.sieve.callgraph_min_connections
        remaining = duration
        hop = self.config.hop
        while remaining > 1e-9:
            step = min(hop, remaining)
            self.session.advance(step)
            remaining -= step
            analysis = self.engine.offer(
                self.session.now, self.session.call_graph(min_count)
            )
            if analysis is not None:
                produced.append(analysis)
                if on_window is not None:
                    on_window(analysis)
        return produced

    def final_analysis(self) -> WindowAnalysis | None:
        """Force a full-retention analysis at the current time.

        With retention covering the whole run, the resulting window
        sees every recorded sample -- the streaming counterpart of the
        batch analysis over the completed trace.
        """
        min_count = self.config.sieve.callgraph_min_connections
        return self.engine.force_analysis(
            self.session.now, self.session.call_graph(min_count)
        )

    def batch_result(self, seed: int | None = None) -> SieveResult:
        """The offline ``Sieve`` result for the trace just streamed.

        Seals the session and runs the batch analysis over the full
        recorded frame -- bit-identical input to what ``Sieve.run``
        would have recorded for the same seed, because batch loading is
        the same session advanced in one hop.
        """
        if not self.record_frame:
            raise ValueError(
                "batch_result() needs record_frame=True at construction"
            )
        run = self.session.finish(
            min_count=self.config.sieve.callgraph_min_connections
        )
        sieve = Sieve(self.application, config=self.config.sieve)
        return sieve.analyze(run, seed=self.seed if seed is None else seed)
