"""Behaviour-drift detection against frozen cluster baselines.

``core/incremental.py`` documents its own blind spot: components whose
*metric set* is unchanged keep their clusters and representatives, so a
slow behavioural drift is invisible until the next full analysis.  This
module closes that gap for the streaming engine.

Whenever a component is (re)clustered, the detector *rebases*: it
freezes, per clustered metric, the location/spread of the raw samples
the clustering saw, and keeps the cluster centroids as the reference
shapes.  Each subsequent window is then scored against that baseline on
two axes:

* **location/spread shift** -- how many baseline standard deviations
  the fresh window's mean (or spread) moved.  This catches level
  shifts, the dominant footprint of degradations and load-pattern
  changes, and is immune to the noise-decorrelation problem below.
* **shape distance** -- SBD between the fresh window of each cluster
  *representative* and the frozen centroid
  (:meth:`repro.clustering.reduction.Cluster.distance_to`).  Raw SBD
  between two windows of a *noise-like* stationary metric is high even
  without drift (independent noise decorrelates), so the term is
  weighted by the centroid's lag-1 autocorrelation: only clusters whose
  baseline shape is coherent (trends, periodicities) can flag shape
  drift.

A component drifts when any of its metrics crosses either threshold.
The windowed analyzer then escalates *only those components* to a full
re-cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.clustering.reduction import ComponentClustering
from repro.metrics.timeseries import MetricFrame, TimeSeries

#: Fresh windows with fewer samples than this are not scored.
DEFAULT_MIN_SAMPLES = 8


@dataclass(frozen=True)
class MetricBaseline:
    """Frozen sample statistics of one metric at rebase time.

    Cumulative counters (monotone non-decreasing exports such as
    ``net_in_bytes_total``) grow without bound, so their raw mean
    "drifts" even under perfectly stationary load.  They are detected
    at rebase time and scored on *first differences* -- the per-scrape
    rate, which is stationary when the load is -- exactly the
    ``rate()`` transform every monitoring rule engine applies.
    """

    mean: float
    std: float
    n: int
    counter: bool = False

    @property
    def scale(self) -> float:
        """Denominator for standardized shifts.

        Floored at 5% of the baseline mean magnitude and an absolute
        epsilon, so near-constant (or all-zero) baselines do not turn
        measurement noise into huge z-scores.
        """
        return max(self.std, 0.05 * abs(self.mean), 1e-2)


@dataclass
class DriftReading:
    """Drift evidence for one metric in one window."""

    component: str
    metric: str
    location_shift: float
    """|fresh mean - baseline mean| in baseline scales."""

    spread_shift: float
    """|fresh std - baseline std| in baseline scales."""

    shape_distance: float = 0.0
    """Coherence-weighted SBD to the cluster centroid (representatives
    only; 0.0 for other members)."""

    @property
    def stat_score(self) -> float:
        return max(self.location_shift, self.spread_shift)


@dataclass
class _ComponentBaseline:
    clustering: ComponentClustering
    metrics: dict[str, MetricBaseline] = field(default_factory=dict)
    coherence: dict[int, float] = field(default_factory=dict)
    """Per-cluster-index lag-1 autocorrelation of the centroid."""


def _is_counter(values: np.ndarray) -> bool:
    """Monotone non-decreasing with net growth -> cumulative counter."""
    if values.size < 3:
        return False
    diffs = np.diff(values)
    span = float(values[-1] - values[0])
    if span <= 0.0:
        return False
    tolerance = 1e-9 * max(abs(float(values[-1])), 1.0)
    return bool(np.all(diffs >= -tolerance))


def _drift_samples(values: np.ndarray, counter: bool) -> np.ndarray:
    """The sample stream drift statistics are computed over."""
    return np.diff(values) if counter else values


def _lag1_autocorr(values: np.ndarray) -> float:
    """Lag-1 autocorrelation, clipped to [0, 1] (noise gate)."""
    v = np.asarray(values, dtype=float)
    if v.size < 3:
        return 0.0
    centered = v - v.mean()
    denom = float(np.dot(centered, centered))
    if denom <= 1e-12:
        return 0.0
    return float(np.clip(np.dot(centered[1:], centered[:-1]) / denom,
                         0.0, 1.0))


def score_baseline(component: str, baseline: _ComponentBaseline,
                   view: dict[str, TimeSeries],
                   min_samples: int = DEFAULT_MIN_SAMPLES,
                   ) -> list[DriftReading]:
    """Score one fresh component window against a frozen baseline.

    Module-level and pure -- a deterministic function of the frozen
    baseline and the fresh samples -- so shard executors can run the
    per-component shape checks on worker processes and merge readings
    identically to an inline pass.
    """
    readings: list[DriftReading] = []
    representatives = {
        cluster.representative: cluster
        for cluster in baseline.clustering.clusters
    }
    for metric, frozen in baseline.metrics.items():
        ts = view.get(metric)
        if ts is None or len(ts) < min_samples:
            continue
        # Read-only view: scoring derives fresh arrays (diff, mean,
        # std, z-normalized copies) and never mutates the samples, so
        # the property copy would be pure overhead -- and on shm shard
        # workers the view reads the shared segment in place.
        values = ts.values_view
        samples = _drift_samples(values, frozen.counter)
        scale = frozen.scale
        reading = DriftReading(
            component=component,
            metric=metric,
            location_shift=abs(float(samples.mean()) - frozen.mean)
            / scale,
            spread_shift=abs(float(samples.std()) - frozen.std) / scale,
        )
        cluster = representatives.get(metric)
        if cluster is not None and values.size >= min_samples:
            coherence = baseline.coherence.get(cluster.index, 0.0)
            if coherence > 0.0:
                reading.shape_distance = \
                    coherence * cluster.distance_to(values)
        readings.append(reading)
    return readings


#: A shard-executor payload: one component's drift-scoring input.
ScorePayload = tuple[str, _ComponentBaseline, dict[str, TimeSeries], int]


def score_baseline_task(
        payload: ScorePayload) -> tuple[str, list[DriftReading]]:
    """Shard-executor task wrapper around :func:`score_baseline`."""
    component, baseline, view, min_samples = payload
    return component, score_baseline(component, baseline, view,
                                     min_samples)


class DriftDetector:
    """Scores fresh windows against frozen clustering baselines."""

    def __init__(self, threshold: float = 6.0,
                 shape_threshold: float = 0.75,
                 min_samples: int = DEFAULT_MIN_SAMPLES):
        if threshold <= 0 or shape_threshold <= 0:
            raise ValueError("drift thresholds must be positive")
        self.threshold = threshold
        self.shape_threshold = shape_threshold
        self.min_samples = min_samples
        self._baselines: dict[str, _ComponentBaseline] = {}

    # -- baseline management -------------------------------------------

    def rebase(self, component: str, clustering: ComponentClustering,
               view: dict[str, TimeSeries]) -> None:
        """Freeze the baseline of a freshly (re)clustered component.

        Every exported metric is baselined, *including* the ones the
        variance pre-filter dropped from clustering: a flat-lined
        metric that starts moving is drift evidence the clusters
        themselves cannot carry.
        """
        baseline = _ComponentBaseline(clustering=clustering)
        for metric, ts in view.items():
            if len(ts) < 3:
                continue
            values = ts.values_view
            counter = _is_counter(values)
            samples = _drift_samples(values, counter)
            baseline.metrics[metric] = MetricBaseline(
                mean=float(samples.mean()), std=float(samples.std()),
                n=int(samples.size), counter=counter,
            )
        for cluster in clustering.clusters:
            baseline.coherence[cluster.index] = \
                _lag1_autocorr(cluster.centroid)
        self._baselines[component] = baseline

    def forget(self, component: str) -> None:
        """Drop a component's baseline (it left the topology)."""
        self._baselines.pop(component, None)

    def has_baseline(self, component: str) -> bool:
        return component in self._baselines

    # -- checkpoint support --------------------------------------------

    def baseline_items(self):
        """Frozen state per component, for checkpointing.

        Yields ``(component, clustering, metric_baselines, coherence)``
        tuples; :mod:`repro.persistence.checkpoint` turns them into
        JSON and :meth:`set_baseline` restores them exactly.
        """
        for component, baseline in sorted(self._baselines.items()):
            yield (component, baseline.clustering,
                   dict(baseline.metrics), dict(baseline.coherence))

    def set_baseline(self, component: str,
                     clustering: ComponentClustering,
                     metrics: dict[str, MetricBaseline],
                     coherence: dict[int, float]) -> None:
        """Install a previously frozen baseline (checkpoint restore)."""
        self._baselines[component] = _ComponentBaseline(
            clustering=clustering,
            metrics=dict(metrics),
            coherence=dict(coherence),
        )

    # -- scoring -------------------------------------------------------

    def score_component(self, component: str,
                        view: dict[str, TimeSeries]) -> list[DriftReading]:
        """Drift readings of one component's fresh window."""
        baseline = self._baselines.get(component)
        if baseline is None:
            return []
        return score_baseline(component, baseline, view,
                              self.min_samples)

    def is_drifted(self, readings: list[DriftReading]) -> bool:
        """Whether any reading crosses a configured threshold."""
        return any(
            r.stat_score > self.threshold
            or r.shape_distance > self.shape_threshold
            for r in readings
        )

    def drifted_components(
        self, frame: MetricFrame, executor=None,
    ) -> tuple[list[str], dict[str, list[DriftReading]]]:
        """Score every baselined component present in ``frame``.

        Returns the drifted component names plus all readings (for
        observability -- quiet components report their scores too).
        ``executor`` (a shard executor with an order-preserving
        ``map``) fans the per-component scoring out to workers;
        components are scored independently, so the merged result is
        identical to the inline pass.
        """
        payloads: list[ScorePayload] = [
            (component, self._baselines[component],
             frame.component_view(component), self.min_samples)
            for component in frame.components
            if component in self._baselines
        ]
        if executor is None:
            scored = [score_baseline_task(payload)
                      for payload in payloads]
        else:
            scored = executor.map(score_baseline_task, payloads)
        drifted: list[str] = []
        all_readings: dict[str, list[DriftReading]] = {}
        for component, readings in scored:
            all_readings[component] = readings
            if self.is_drifted(readings):
                drifted.append(component)
        return drifted, all_readings
