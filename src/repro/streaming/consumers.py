"""Live consumers of the streaming engine's window analyses.

Two consumers mirror the paper's case studies, moved online:

* :class:`LiveScalingPolicy` keeps an autoscaling rule bound to the
  *current* most-connected metric of the streaming dependency graph --
  instead of the static guide a one-shot :class:`SieveResult` provides
  (Section 4.1).  When the graph's election changes, the rule is
  rebound and the event recorded.
* :class:`WindowDiffRCA` snapshots any two retained windows and runs
  the five-step RCA diff between them (Section 4.2), so a "correct
  vs faulty" comparison no longer needs two dedicated offline loads --
  pick a window before the regression and one after.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.autoscaling.rules import ScalingRule
from repro.rca.engine import RCAEngine, RCAReport
from repro.streaming.analyzer import WindowAnalysis
from repro.streaming.engine import StreamingSieve


@dataclass
class RebindEvent:
    """One guiding-metric change observed by the live policy."""

    window_index: int
    metric_component: str
    metric: str


class LiveScalingPolicy:
    """Autoscaling rule that follows the streaming dependency graph.

    Subscribe it to a :class:`StreamingSieve`; on every window it
    re-elects the guiding metric (optionally restricted to one
    component's exports) and rebinds the rule when the election
    changed.  ``decide`` then delegates to the current rule.
    """

    def __init__(self, rule: ScalingRule,
                 guide_component: str | None = None):
        """``rule`` provides thresholds/bounds; its metric binding is
        replaced as soon as the first window elects a guide.
        ``guide_component`` restricts the election to one component's
        metrics (e.g. the scaled component itself)."""
        self.rule = rule
        self.guide_component = guide_component
        self.rebinds: list[RebindEvent] = []
        self.windows_seen = 0

    @property
    def guiding_metric(self) -> tuple[str, str]:
        """The (component, metric) currently steering decisions."""
        return (self.rule.metric_component, self.rule.metric)

    def on_window(self, analysis: WindowAnalysis) -> None:
        """Engine callback: re-elect the guide from the fresh graph."""
        self.windows_seen += 1
        elected = analysis.guiding_metric(self.guide_component)
        if elected is None or elected == self.guiding_metric:
            return
        component, metric = elected
        self.rule = self.rule.rebind(component, metric)
        self.rebinds.append(RebindEvent(
            window_index=analysis.index,
            metric_component=component,
            metric=metric,
        ))

    def decide(self, now: float, metric_window,
               current_instances: int) -> int:
        """Scaling delta under the currently-bound rule."""
        return self.rule.decide(now, metric_window, current_instances)


class WindowDiffRCA:
    """Root-cause analysis between two streaming windows."""

    def __init__(self, engine: StreamingSieve,
                 rca: RCAEngine | None = None):
        self.engine = engine
        self.rca = rca or RCAEngine()

    def compare(self, correct: int = 0, faulty: int = -1,
                threshold: float = 0.5) -> RCAReport:
        """Diff two retained windows by history index.

        ``correct`` defaults to the oldest retained window, ``faulty``
        to the newest -- the "what changed since things were healthy"
        question a paged operator actually asks.
        """
        window_c, window_f = self.engine.window_pair(correct, faulty)
        return self.rca.compare_windows(window_c, window_f,
                                        threshold=threshold)
