"""Live consumers of the streaming engine's window analyses.

Two consumers mirror the paper's case studies, moved online:

* :class:`LiveScalingPolicy` keeps an autoscaling rule bound to the
  *current* most-connected metric of the streaming dependency graph --
  instead of the static guide a one-shot :class:`SieveResult` provides
  (Section 4.1).  When the graph's election changes, the rule is
  rebound and the event recorded.
* :class:`WindowDiffRCA` snapshots any two retained windows and runs
  the five-step RCA diff between them (Section 4.2), so a "correct
  vs faulty" comparison no longer needs two dedicated offline loads --
  pick a window before the regression and one after.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.autoscaling.rules import ScalingRule
from repro.autoscaling.sla import SLACondition
from repro.rca.engine import RCAEngine, RCAReport
from repro.streaming.analyzer import WindowAnalysis
from repro.streaming.engine import StreamingSieve


@dataclass
class RebindEvent:
    """One guiding-metric change observed by the live policy."""

    window_index: int
    metric_component: str
    metric: str


class LiveScalingPolicy:
    """Autoscaling rule that follows the streaming dependency graph.

    Subscribe it to a :class:`StreamingSieve`; on every window it
    re-elects the guiding metric (optionally restricted to one
    component's exports) and rebinds the rule when the election
    changed.  ``decide`` then delegates to the current rule.
    """

    def __init__(self, rule: ScalingRule,
                 guide_component: str | None = None):
        """``rule`` provides thresholds/bounds; its metric binding is
        replaced as soon as the first window elects a guide.
        ``guide_component`` restricts the election to one component's
        metrics (e.g. the scaled component itself)."""
        self.rule = rule
        self.guide_component = guide_component
        self.rebinds: list[RebindEvent] = []
        self.windows_seen = 0

    @classmethod
    def from_options(cls, *, component: str, scale_up: float,
                     scale_down: float,
                     guide_component: str | None = None,
                     min_instances: int = 1, max_instances: int = 10,
                     cooldown: float = 15.0,
                     window: float = 10.0) -> "LiveScalingPolicy":
        """Build a policy from flat spec options (registry factory).

        The rule starts unbound (empty guiding metric) and is bound by
        the first window's election -- exactly how a declarative run
        spec wants to describe it, without naming a metric up front.
        """
        rule = ScalingRule(
            component=component,
            metric_component=component,
            metric="",
            scale_up_threshold=scale_up,
            scale_down_threshold=scale_down,
            min_instances=min_instances,
            max_instances=max_instances,
            cooldown=cooldown,
            window=window,
        )
        return cls(rule, guide_component=guide_component)

    @property
    def guiding_metric(self) -> tuple[str, str]:
        """The (component, metric) currently steering decisions."""
        return (self.rule.metric_component, self.rule.metric)

    def on_window(self, analysis: WindowAnalysis) -> None:
        """Engine callback: re-elect the guide from the fresh graph."""
        self.windows_seen += 1
        elected = analysis.guiding_metric(self.guide_component)
        if elected is None or elected == self.guiding_metric:
            return
        component, metric = elected
        self.rule = self.rule.rebind(component, metric)
        self.rebinds.append(RebindEvent(
            window_index=analysis.index,
            metric_component=component,
            metric=metric,
        ))

    def decide(self, now: float, metric_window,
               current_instances: int) -> int:
        """Scaling delta under the currently-bound rule."""
        return self.rule.decide(now, metric_window, current_instances)


@dataclass
class TriggeredRCAReport:
    """One automatically fired window-diff RCA."""

    faulty_index: int
    """Window index of the drifted+violating window."""

    baseline_index: int
    """Window index of the healthy reference it was diffed against."""

    report: RCAReport


class WindowDiffRCA:
    """Root-cause analysis between two streaming windows.

    Used directly, :meth:`compare` diffs any two retained windows.
    Subscribed to the engine *with an SLA condition*, it also fires
    automatically: whenever a drift escalation and an SLA violation
    land in the same window -- the "behaviour changed AND users are
    hurting" coincidence that pages an operator -- it diffs that window
    against the most recent healthy window and records the ranked
    report (optionally forwarding it to ``on_report``).
    """

    def __init__(self, engine: StreamingSieve,
                 rca: RCAEngine | None = None,
                 sla: SLACondition | None = None,
                 threshold: float = 0.5,
                 on_report: Callable[[TriggeredRCAReport], None]
                 | None = None):
        self.engine = engine
        self.rca = rca or RCAEngine()
        self.sla = sla
        self.threshold = threshold
        self.on_report = on_report
        self.reports: list[TriggeredRCAReport] = []
        self.windows_seen = 0

    def compare(self, correct: int = 0, faulty: int = -1,
                threshold: float = 0.5) -> RCAReport:
        """Diff two retained windows by history index.

        ``correct`` defaults to the oldest retained window, ``faulty``
        to the newest -- the "what changed since things were healthy"
        question a paged operator actually asks.
        """
        window_c, window_f = self.engine.window_pair(correct, faulty)
        return self.rca.compare_windows(window_c, window_f,
                                        threshold=threshold)

    def _healthy_baseline(self,
                          faulty: WindowAnalysis) -> WindowAnalysis | None:
        """Newest retained window before ``faulty`` without drift."""
        healthy = None
        fallback = None
        for candidate in self.engine.history:
            # Checkpoint-restored analyses carry no frame (raw samples
            # are not checkpointed); diffing against one would report
            # every metric as changed.
            if candidate.index >= faulty.index \
                    or not len(candidate.frame):
                continue
            fallback = candidate
            if "drift" not in candidate.recluster_reasons.values():
                healthy = candidate
        return healthy if healthy is not None else fallback

    def on_window(self, analysis: WindowAnalysis) -> None:
        """Engine callback: fire when drift and SLA pain coincide."""
        self.windows_seen += 1
        if self.sla is None:
            return
        if "drift" not in analysis.recluster_reasons.values():
            return
        latencies = self.engine.latencies_between(analysis.start,
                                                  analysis.end)
        if not self.sla.violated(latencies):
            return
        baseline = self._healthy_baseline(analysis)
        if baseline is None:
            return  # nothing healthy retained to diff against
        report = self.rca.compare_windows(baseline, analysis,
                                          threshold=self.threshold)
        triggered = TriggeredRCAReport(
            faulty_index=analysis.index,
            baseline_index=baseline.index,
            report=report,
        )
        self.reports.append(triggered)
        if self.on_report is not None:
            self.on_report(triggered)
