"""The streaming Sieve engine: ingest -> window -> analyze -> notify.

:class:`StreamingSieve` owns the ingestion bus, the bounded window
store, the windowed analyzer and the drift detector, and exposes a
pull-driven ``offer(now, call_graph)`` tick: whoever advances time (the
co-simulation driver, a replay loop, a real scrape thread) calls it
after every hop; the engine flushes the bus and, once a hop boundary
has passed and enough samples accumulated, analyzes the current window
and notifies subscribed consumers (live autoscalers, RCA snapshots).
"""

from __future__ import annotations

import time
from collections import deque

from repro.core.config import StreamingConfig
from repro.obs.telemetry import Telemetry
from repro.parallel.executor import ShardExecutor, make_executor
from repro.streaming.analyzer import (
    StreamingStats,
    WindowAnalysis,
    WindowAnalyzer,
)
from repro.streaming.bus import IngestionBus
from repro.streaming.drift import DriftDetector
from repro.streaming.window import WindowStore
from repro.tracing.callgraph import CallGraph


class StreamingSieve:
    """Continuously running Sieve over an ingestion stream."""

    def __init__(self, config: StreamingConfig | None = None,
                 seed: int = 0, bus: IngestionBus | None = None,
                 application: str = "", workload: str = "stream",
                 store_backend=None, journal=None,
                 executor: ShardExecutor | None = None,
                 telemetry: Telemetry | None = None):
        """``store_backend`` (a
        :class:`~repro.persistence.backend.StorageBackend`) makes the
        window store durable; ``journal`` (an
        :class:`~repro.persistence.journal.IngestJournal`) makes the
        ingest stream replayable after a crash.  ``executor``
        overrides the shard executor the config would build
        (``config.executor`` / ``config.executor_workers``); the
        engine owns it and shuts it down in :meth:`close`.
        ``telemetry`` (a :class:`repro.obs.Telemetry`) makes the engine
        observable -- strictly read-only over analysis state, so every
        determinism guarantee holds with it on or off; disabled (the
        default) it reduces to no-op instruments."""
        self.config = config or StreamingConfig()
        self.seed = seed
        self.application = application
        self.workload = workload
        self.telemetry = telemetry or Telemetry.disabled()
        self.bus = bus or IngestionBus(
            max_pending=self.config.bus_max_pending,
            overflow_policy=self.config.bus_overflow_policy,
        )
        if journal is not None:
            self.bus.attach_journal(journal)
        self.windows = WindowStore(
            retention=self.config.retention,
            max_points_per_series=self.config.max_points_per_series,
            backend=store_backend,
        )
        self.bus.subscribe(self.windows)
        self.sla_history: deque[tuple[float, float]] = deque(maxlen=65536)
        """Recent (time, end-to-end latency) observations (see
        :meth:`observe_latency`)."""
        # The detector implementation is a registry-resolved policy
        # choice (config.drift_detector), so seasonality-aware or
        # per-metric-adaptive detectors plug in without engine edits.
        from repro.api.registry import DRIFT_DETECTORS

        self.drift: DriftDetector = DRIFT_DETECTORS.create(
            self.config.drift_detector,
            threshold=self.config.drift_threshold,
            shape_threshold=self.config.drift_shape_threshold,
        )
        self.executor = executor if executor is not None else \
            make_executor(self.config.executor,
                          self.config.executor_workers or None)
        # An executor with a shared-memory segment pool (the ``shm``
        # strategy) homes the window rings in its segments, so shard
        # payloads cross to workers as descriptors, not pickled arrays.
        shm_pool = getattr(self.executor, "segments", None)
        if shm_pool is not None:
            self.windows.attach_shm_pool(shm_pool)
        self.analyzer = WindowAnalyzer(
            config=self.config, drift_detector=self.drift, seed=seed,
            executor=self.executor, telemetry=self.telemetry,
        )
        self.history: deque[WindowAnalysis] = deque(
            maxlen=self.config.history
        )
        self.stats = StreamingStats()
        self.skipped_windows = 0
        self._consumers: list = []
        self._next_analysis: float | None = None
        self.last_offer: float | None = None
        """Timestamp of the most recent :meth:`offer` tick (checkpointed,
        so a resumed driver can realign its clock with the dead run)."""

        self.current_hop = float(self.config.hop)
        """The live analysis cadence.  Fixed at ``config.hop`` unless
        :attr:`~repro.core.config.StreamingConfig.adaptive_hop` is on,
        in which case drift pressure scales it between the configured
        bounds (checkpointed, so a resumed run keeps its cadence)."""

        self.view = None
        """An attached :class:`~repro.obs.query.AnalysisView` (or
        None): every analyzed window is published into it *after* all
        consumers ran, so queries see post-consumer state."""
        self.events = None
        """An attached :class:`~repro.obs.query.EventLog` (or None):
        drift escalations and re-clusters are appended per window."""
        self.last_analysis_walltime: float | None = None
        """Wall-clock stamp of the newest analysis (staleness gauge
        only -- never checkpointed, never read by analysis)."""

        if self.telemetry.enabled:
            self.bus.attach_telemetry(self.telemetry)
            self._register_telemetry()

    def _register_telemetry(self) -> None:
        """Create the engine's instrument families and the scrape-time
        collector that samples the already-maintained stats structs
        (bus, store, executor, journal) -- the hot paths pay nothing.
        """
        registry = self.telemetry.registry
        bus_total = registry.counter(
            "repro_bus_total", "Lifetime ingestion-bus counts, by event",
            labelnames=("event",),
        )
        bus_pending = registry.gauge(
            "repro_bus_pending_points",
            "Points buffered on the bus, awaiting flush",
        )
        store_total = registry.counter(
            "repro_store_total", "Lifetime window-store counts, by event",
            labelnames=("event",),
        )
        store_retained = registry.gauge(
            "repro_store_points_retained",
            "Samples currently held across every ring",
        )
        store_series = registry.gauge(
            "repro_store_series", "Live (component, metric) rings",
        )
        windows_total = registry.counter(
            "repro_windows_total",
            "Window boundary outcomes (analyzed vs skipped for want "
            "of samples)",
            labelnames=("outcome",),
        )
        drift_total = registry.counter(
            "repro_drift_escalations_total",
            "Windows components were escalated to re-cluster by drift",
        )
        edges_total = registry.counter(
            "repro_edges_total",
            "Dependency-graph edge decisions (Granger retested vs "
            "merged from the previous window)",
            labelnames=("decision",),
        )
        hop_gauge = registry.gauge(
            "repro_engine_current_hop_seconds",
            "Live analysis cadence (config.hop unless adapted)",
        )
        executor_total = registry.counter(
            "repro_executor_tasks_total",
            "Shard payloads dispatched, by executor kind",
            labelnames=("executor",),
        )
        journal_total = registry.counter(
            "repro_journal_total",
            "Write-ahead ingest-journal counts, by event",
            labelnames=("event",),
        )
        last_window = registry.gauge(
            "repro_last_window_epoch",
            "Index of the newest analyzed window (-1 before the first)",
        )
        last_analysis = registry.gauge(
            "repro_last_analysis_timestamp_seconds",
            "Wall-clock Unix time of the newest analysis (0 before "
            "the first) -- alert when now() - this exceeds the hop",
        )
        # Shared-memory transport gauges exist only when the executor
        # actually owns a segment pool, so non-shm engines expose an
        # unchanged family set.
        shm_pool = getattr(self.executor, "segments", None)
        shm_gauge = None
        if shm_pool is not None:
            shm_gauge = registry.gauge(
                "repro_shm_pool",
                "Shared-memory segment pool shape, by stat "
                "(segments, bytes, epoch, staged_bytes)",
                labelnames=("stat",),
            )

        def sample() -> None:
            bus_stats = self.bus.stats
            for event, value in bus_stats.as_dict().items():
                bus_total.set_total(value, event=event)
            bus_pending.set(self.bus.pending_points)
            store = self.windows
            store_total.set_total(store.points_ingested,
                                  event="points_ingested")
            store_total.set_total(store.batches_ingested,
                                  event="batches_ingested")
            store_total.set_total(store.total_evicted(),
                                  event="points_evicted")
            store_total.set_total(store.backend_reads,
                                  event="backend_reads")
            store_total.set_total(store.backend_writes,
                                  event="backend_writes")
            store_retained.set(store.total_points())
            store_series.set(store.series_count())
            windows_total.set_total(self.stats.windows,
                                    outcome="analyzed")
            windows_total.set_total(self.skipped_windows,
                                    outcome="skipped")
            drift_total.set_total(self.stats.drift_escalations)
            edges_total.set_total(self.stats.edges_retested,
                                  decision="retested")
            edges_total.set_total(self.stats.edges_reused,
                                  decision="reused")
            hop_gauge.set(self.current_hop)
            newest = self.history[-1] if self.history else None
            last_window.set(newest.index if newest is not None else -1)
            last_analysis.set(self.last_analysis_walltime or 0.0)
            executor_total.set_total(self.executor.tasks_dispatched,
                                     executor=self.executor.kind)
            if shm_gauge is not None:
                for stat, value in shm_pool.stats().items():
                    shm_gauge.set(value,
                                  stat=stat.removeprefix("shm_"))
            journal = self.bus.journal
            if journal is not None:
                journal_total.set_total(journal.records_written,
                                        event="records_written")
                journal_total.set_total(journal.rotations,
                                        event="rotations")
                journal_total.set_total(journal.segments_retired,
                                        event="segments_retired")

        registry.add_collector(sample)

    # -- consumers -----------------------------------------------------

    def attach_view(self, view) -> None:
        """Publish every analyzed window into an
        :class:`~repro.obs.query.AnalysisView` (pass None to detach).
        Strictly an observer: the view renders to plain dicts and
        nothing flows back, so determinism holds either way."""
        self.view = view

    def attach_events(self, events) -> None:
        """Append drift/re-cluster events per window into an
        :class:`~repro.obs.query.EventLog` (pass None to detach)."""
        self.events = events

    def subscribe(self, consumer) -> None:
        """Register a consumer: callable or object with ``on_window``."""
        if callable(consumer):
            self._consumers.append(consumer)
        elif hasattr(consumer, "on_window"):
            self._consumers.append(consumer.on_window)
        else:
            raise TypeError(
                "consumer must be callable or expose .on_window()"
            )

    def resume_horizon(self) -> float | None:
        """The instant up to which this engine already holds history.

        For a crash-restored engine this is the fast-forward cutoff: a
        mid-hop crash leaves journaled samples *newer* than the last
        engine tick (the bus auto-flushes inside hops), so the horizon
        is the max of the last tick and the newest retained sample.
        None when the engine has seen nothing at all.
        """
        horizon = self.last_offer
        newest = self.windows.latest_time()
        if newest is not None:
            horizon = newest if horizon is None else max(horizon, newest)
        return horizon

    # -- SLA observations ----------------------------------------------

    def observe_latency(self, time: float, latency: float) -> None:
        """Record one end-to-end latency sample.

        The co-simulation driver forwards the session's SLA samples
        here so consumers (e.g. the auto-triggered
        :class:`~repro.streaming.consumers.WindowDiffRCA`) can judge a
        window against an SLA condition.
        """
        self.sla_history.append((float(time), float(latency)))

    def latencies_between(self, start: float, end: float) -> list[float]:
        """Observed latencies with ``start <= t <= end``."""
        return [v for t, v in self.sla_history if start <= t <= end]

    # -- the tick ------------------------------------------------------

    def offer(self, now: float,
              call_graph: CallGraph) -> WindowAnalysis | None:
        """Flush ingestion and analyze if a window boundary passed.

        Returns the fresh :class:`WindowAnalysis` when one was run,
        else None.  ``call_graph`` is the caller's current view of the
        communication topology (from the tracer in co-simulation, or a
        static deployment map).
        """
        cfg = self.config
        self.last_offer = now
        self.bus.flush()

        if self._next_analysis is None:
            if self.windows.first_time is None:
                return None
            # First analysis once a full window of data exists.
            self._next_analysis = self.windows.first_time + cfg.window
        if now < self._next_analysis:
            return None

        # The post-window schedule (and the adapted cadence) must be
        # in place *before* consumers see the analysis: a checkpoint
        # taken in a consumer callback has to describe the state a
        # resume should continue from, not the pre-window one.
        analysis = self._analyze_window(
            now - cfg.window, now, call_graph,
            pre_notify=lambda a: self._schedule_after(a, now),
        )
        if analysis is None:
            self._schedule_after(None, now)
        return analysis

    def _schedule_after(self, analysis: WindowAnalysis | None,
                        now: float) -> None:
        """Advance the hop schedule past the window just analyzed."""
        self._adapt_hop(analysis)
        self._next_analysis += self.current_hop
        if self._next_analysis <= now:
            # The caller hopped further than one cadence; realign.
            self._next_analysis = now + self.current_hop

    def tick_interval(self) -> float:
        """How far a driver should advance between :meth:`offer` ticks
        (the live hop -- equal to ``config.hop`` unless the adaptive
        cadence moved it)."""
        return self.current_hop

    def _adapt_hop(self, analysis: WindowAnalysis | None) -> None:
        """Scale the cadence with drift pressure (adaptive hop).

        A window whose re-clusters include a drift escalation halves
        the live hop (a drifting system deserves closer watching); a
        fully reused window stretches it by 25% (a quiet system can be
        analyzed less often).  Windows with only structural re-clusters
        (metric-set changes, refreshes) or too little data hold the
        cadence steady.
        """
        if not self.config.adaptive_hop or analysis is None:
            return
        lo, hi = self.config.hop_bounds()
        reasons = analysis.recluster_reasons.values()
        if "drift" in reasons:
            self.current_hop = max(lo, self.current_hop * 0.5)
        elif not analysis.reclustered:
            self.current_hop = min(hi, self.current_hop * 1.25)

    def force_analysis(self, now: float, call_graph: CallGraph,
                       start: float | None = None,
                       ) -> WindowAnalysis | None:
        """Analyze immediately, ignoring the hop schedule.

        With ``start=None`` the *entire retained history* is analyzed
        rather than one window -- the final full-retention pass a
        stream shutdown (or a streaming-vs-batch comparison) wants.
        Scrape jitter can stamp the newest sample slightly past ``now``,
        so the full-history pass extends to the newest retained sample.
        """
        self.bus.flush()
        if start is None:
            first = self.windows.first_time
            newest = self.windows.latest_time()
            start = float("-inf") if first is None else first
            end = now if newest is None else max(now, newest)
            return self._analyze_window(start, end, call_graph)
        return self._analyze_window(start, now, call_graph)

    def _analyze_window(self, start: float, end: float,
                        call_graph: CallGraph,
                        pre_notify=None) -> WindowAnalysis | None:
        """``pre_notify`` runs after the engine state is updated but
        before subscribed consumers fire (scheduling bookkeeping that
        checkpoints taken by consumers must already reflect)."""
        tracer = self.telemetry.tracer
        with tracer.span("snapshot"):
            frame = self.windows.snapshot(start, end)
        if frame.total_samples() < self.config.min_window_samples:
            self.skipped_windows += 1
            # Pending phases (ingest, this snapshot) stay accumulated:
            # the next produced window's trace accounts for them.
            return None
        analysis = self.analyzer.analyze(
            frame, call_graph, start, end,
            index=self.stats.windows,
        )
        analysis.application = self.application
        analysis.workload = self.workload
        self.history.append(analysis)
        self.stats.record(analysis)
        # Consumers may themselves record spans (the checkpoint policy
        # cuts "writer_flush"/"checkpoint"); subtract those so the
        # trace's phases stay disjoint.
        nested_phases = ("writer_flush", "checkpoint")
        nested_before = tracer.pending_seconds(nested_phases)
        loop_span = tracer.span("consumers")
        if pre_notify is not None:
            pre_notify(analysis)
        for consumer in self._consumers:
            consumer(analysis)
        loop_elapsed = loop_span.discard()
        nested = tracer.pending_seconds(nested_phases) - nested_before
        tracer.add("consumers", max(loop_elapsed - nested, 0.0))
        tracer.finish_window(analysis.index, start, end)
        if self.events is not None:
            drifted = sorted(
                component
                for component, reason in
                analysis.recluster_reasons.items()
                if reason == "drift"
            )
            if drifted:
                self.events.append("drift-escalation", end, {
                    "window": analysis.index, "components": drifted,
                })
            if analysis.reclustered:
                self.events.append("recluster", end, {
                    "window": analysis.index,
                    "components": sorted(analysis.reclustered),
                    "reasons": dict(analysis.recluster_reasons),
                })
        if self.view is not None:
            # After consumers + events: queries see post-consumer state.
            self.view.publish(analysis)
        # Telemetry staleness gauge only -- never feeds analysis
        # state, so the wall-clock read is deliberate here.
        self.last_analysis_walltime = time.time()  # repro-lint: disable=RL010
        return analysis

    # -- consumer-facing views ------------------------------------------

    def latest(self) -> WindowAnalysis | None:
        """Most recent window analysis, or None before the first."""
        return self.history[-1] if self.history else None

    def window_pair(self, first: int = 0,
                    second: int = -1) -> tuple[WindowAnalysis,
                                               WindowAnalysis]:
        """Two retained analyses by history index (RCA diffs)."""
        if len(self.history) < 2:
            raise ValueError("need at least two analyzed windows")
        retained = list(self.history)
        return retained[first], retained[second]

    def summary(self) -> dict:
        """Engine-level counters for logs and benchmarks.

        With telemetry enabled, a ``telemetry`` block (phase-second
        totals and the last window's trace) is merged in; the disabled
        summary is byte-for-byte what it always was.
        """
        out = {
            "application": self.application,
            **self.stats.as_dict(),
            "current_hop": round(self.current_hop, 3),
            "skipped_windows": self.skipped_windows,
            "points_retained": self.windows.total_points(),
            "points_evicted": self.windows.total_evicted(),
            "backend_reads": self.windows.backend_reads,
            "series": self.windows.series_count(),
            **self.executor.describe(),
            **self.bus.stats.as_dict(),
        }
        if self.telemetry.enabled:
            out["telemetry"] = self.telemetry.summary()
        return out

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Release the shard executor's pooled workers (idempotent).

        Rings detach from shared memory *first*: closing the
        executor's segment pool must not find live parent-side views
        into its segments.  The window store's backend is *not* closed
        here -- its lifecycle belongs to whoever opened it (the CLI, a
        test, a collector process).
        """
        self.windows.detach_shm()
        self.executor.close()
