"""Windowed Sieve analysis with incremental reuse and drift escalation.

Per window the analyzer decides, component by component, whether the
previous clustering still stands:

* no previous analysis (or a scheduled full refresh) -> re-cluster;
* the exported metric set changed (deploy footprint, exactly the
  trigger of :mod:`repro.core.incremental`) -> re-cluster;
* the drift detector flags behavioural drift -> re-cluster;
* otherwise the previous clustering (and every dependency-graph
  relation between untouched components) is reused.

Granger re-testing is restricted to call-graph edges touching a
re-clustered component, via the same helpers the batch incremental
path uses, so the per-window cost scales with how much actually moved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.causality.depgraph import DependencyGraph
from repro.causality.pairwise import extract_dependencies
from repro.clustering.reduction import (
    ComponentClustering,
    reduce_component_task,
    reduce_payload,
)
from repro.core.config import StreamingConfig
from repro.core.incremental import (
    changed_metric_components,
    merge_dependency_graphs,
    restricted_call_graph,
)
from repro.core.results import SieveResult
from repro.metrics.store import MetricsStore
from repro.metrics.timeseries import MetricFrame
from repro.obs.telemetry import Telemetry
from repro.parallel.executor import ShardExecutor
from repro.simulator.app import LoadedRun
from repro.streaming.drift import DriftDetector, DriftReading
from repro.tracing.callgraph import CallGraph
from repro.tracing.sysdig import SysdigTracer


@dataclass
class WindowAnalysis:
    """Everything one window's analysis produced."""

    index: int
    start: float
    end: float
    frame: MetricFrame = field(repr=False)
    call_graph: CallGraph = field(repr=False)
    clusterings: dict[str, ComponentClustering] = field(repr=False)
    dependency_graph: DependencyGraph = field(repr=False)
    reclustered: list[str]
    reused: list[str]
    recluster_reasons: dict[str, str]
    """component -> why it was re-clustered ("initial", "metric-set",
    "drift", or "refresh")."""

    drift_readings: dict[str, list[DriftReading]] = field(repr=False)
    edges_retested: int = 0
    edges_reused: int = 0
    analysis_seconds: float = 0.0
    application: str = ""
    workload: str = "stream"
    seed: int = 0

    # -- the SieveResult-compatible surface -----------------------------

    def total_metrics(self) -> int:
        return len(self.frame)

    def total_representatives(self) -> int:
        return sum(c.n_clusters for c in self.clusterings.values())

    def representatives_of(self, component: str) -> list[str]:
        return self.clusterings[component].representatives

    def guiding_metric(self, component: str | None = None):
        """The most-connected metric of this window's graph."""
        return self.dependency_graph.most_connected_metric(component)

    def reclustered_by_reason(self) -> dict[str, list[str]]:
        """reason -> components, for observability and tests."""
        by_reason: dict[str, list[str]] = {}
        for component, reason in self.recluster_reasons.items():
            by_reason.setdefault(reason, []).append(component)
        return {reason: sorted(names)
                for reason, names in by_reason.items()}

    def to_sieve_result(self) -> SieveResult:
        """Package this window as a :class:`SieveResult` snapshot.

        The run wraps the window's frame, so every downstream consumer
        (RCA diffs, snapshot serialization, reporting) works on a
        window exactly as it would on an offline load.
        """
        run = LoadedRun(
            application=self.application,
            workload=self.workload,
            seed=self.seed,
            duration=self.end - self.start,
            frame=self.frame,
            call_graph=self.call_graph,
            store=MetricsStore(),
            tracer=SysdigTracer(),
        )
        return SieveResult(run=run, clusterings=dict(self.clusterings),
                           dependency_graph=self.dependency_graph)

    def summary(self) -> dict:
        """One per-window log line worth of numbers."""
        return {
            "window": self.index,
            "span": (round(self.start, 1), round(self.end, 1)),
            "metrics": self.total_metrics(),
            "representatives": self.total_representatives(),
            "relations": len(self.dependency_graph),
            "reclustered": len(self.reclustered),
            "reused": len(self.reused),
            "reasons": self.reclustered_by_reason(),
            "edges_retested": self.edges_retested,
            "edges_reused": self.edges_reused,
            "analysis_ms": round(self.analysis_seconds * 1000.0, 1),
        }


@dataclass
class StreamingStats:
    """Aggregated counters over an engine's lifetime."""

    windows: int = 0
    components_reclustered: int = 0
    components_reused: int = 0
    edges_retested: int = 0
    edges_reused: int = 0
    drift_escalations: int = 0
    analysis_seconds: float = 0.0

    def record(self, analysis: WindowAnalysis) -> None:
        self.windows += 1
        self.components_reclustered += len(analysis.reclustered)
        self.components_reused += len(analysis.reused)
        self.edges_retested += analysis.edges_retested
        self.edges_reused += analysis.edges_reused
        self.drift_escalations += sum(
            1 for reason in analysis.recluster_reasons.values()
            if reason == "drift"
        )
        self.analysis_seconds += analysis.analysis_seconds

    def reuse_fraction(self) -> float:
        """Share of component analyses served from cache."""
        total = self.components_reclustered + self.components_reused
        return self.components_reused / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "windows": self.windows,
            "components_reclustered": self.components_reclustered,
            "components_reused": self.components_reused,
            "reuse_fraction": round(self.reuse_fraction(), 3),
            "edges_retested": self.edges_retested,
            "edges_reused": self.edges_reused,
            "drift_escalations": self.drift_escalations,
            "analysis_seconds": round(self.analysis_seconds, 3),
        }


class WindowAnalyzer:
    """Runs reduce + identify over successive windows with reuse."""

    def __init__(self, config: StreamingConfig | None = None,
                 drift_detector: DriftDetector | None = None,
                 seed: int = 0,
                 executor: ShardExecutor | None = None,
                 telemetry: Telemetry | None = None):
        """``executor`` decides where per-component shards (reduce +
        re-cluster, drift shape checks) run -- inline by default; see
        :func:`repro.parallel.executor.make_executor`.  Results are
        merged in component order, so every strategy produces the same
        analysis.  ``telemetry`` supplies the span tracer the per-window
        timing runs through (a private disabled instance otherwise --
        the clock always ticks, retention is what enablement buys)."""
        self.config = config or StreamingConfig()
        self.drift = drift_detector or DriftDetector(
            threshold=self.config.drift_threshold,
            shape_threshold=self.config.drift_shape_threshold,
        )
        self.seed = seed
        if executor is None:
            from repro.api.registry import EXECUTORS

            executor = EXECUTORS.create("serial")
        self.executor = executor
        self.telemetry = telemetry or Telemetry.disabled()
        self.tracer = self.telemetry.tracer
        registry = self.telemetry.registry
        self._analysis_seconds = registry.histogram(
            "repro_window_analysis_seconds",
            "End-to-end wall time of one window analysis",
        )
        self._recluster_seconds = registry.histogram(
            "repro_recluster_seconds",
            "Wall time of the per-window re-cluster fan-out, "
            "by shard-executor kind",
            labelnames=("executor",),
        )
        self._reclustered_total = registry.counter(
            "repro_components_reclustered_total",
            "Components re-clustered, by trigger reason",
            labelnames=("reason",),
        )
        self._reused_total = registry.counter(
            "repro_components_reused_total",
            "Component analyses served from the previous window",
        )
        self.previous: WindowAnalysis | None = None
        self._windows_since_refresh = 0

    def restore(self, previous: WindowAnalysis | None,
                windows_since_refresh: int = 0) -> None:
        """Install checkpointed incremental state.

        ``analyze`` only reads the previous window's clusterings and
        dependency graph, so a restored ``previous`` may carry an empty
        frame/call graph (checkpoints do not persist raw samples --
        those are replayed from the ingest journal instead).
        """
        self.previous = previous
        self._windows_since_refresh = int(windows_since_refresh)

    @property
    def windows_since_refresh(self) -> int:
        """Windows analyzed since the last scheduled full refresh."""
        return self._windows_since_refresh

    def _decide_reclusters(
        self, frame: MetricFrame,
    ) -> tuple[dict[str, str], dict[str, list[DriftReading]]]:
        """component -> recluster reason, for the current window."""
        cfg = self.config
        if self.previous is None:
            return {c: "initial" for c in frame.components}, {}
        if cfg.full_refresh_windows \
                and self._windows_since_refresh >= cfg.full_refresh_windows:
            self._windows_since_refresh = 0
            return {c: "refresh" for c in frame.components}, {}

        reasons: dict[str, str] = {}
        for component in changed_metric_components(
                self.previous.clusterings, frame):
            reasons[component] = (
                "metric-set" if component in self.previous.clusterings
                else "initial"
            )
        drifted, readings = self.drift.drifted_components(
            frame, executor=self.executor)
        for component in drifted:
            reasons.setdefault(component, "drift")
        return reasons, readings

    def analyze(self, frame: MetricFrame, call_graph: CallGraph,
                start: float, end: float,
                index: int = 0) -> WindowAnalysis:
        """Analyze one window, reusing whatever did not move."""
        cfg = self.config.sieve
        # The total is a discarded span -- pure stopwatch -- so the
        # trace's phase breakdown (drift/recluster/depgraph below) is
        # not double-counted; its elapsed time still feeds the
        # compatibility field and its own histogram.
        total = self.tracer.span("analyze")
        with self.tracer.span("drift"):
            reasons, drift_readings = self._decide_reclusters(frame)
        changed = set(reasons)
        # Components that went silent since the previous window: their
        # clusterings are dropped above (we only keep frame components),
        # and their stale dependency relations must not be carried
        # forward either, so they count as changed for the graph merge.
        previous = self.previous
        if previous is not None:
            vanished = set(previous.clusterings) \
                - set(frame.components)
            changed |= vanished
            for component in vanished:
                self.drift.forget(component)

        # Fan the re-clustered components out to the shard executor.
        # Each payload is a pure seeded task; merging in component
        # order keeps the analysis identical across strategies.
        with self.tracer.span("recluster") as recluster_span:
            views = {
                component: frame.component_view(component)
                for component in frame.components
                if component in changed
            }
            produced = dict(self.executor.map(reduce_component_task, [
                reduce_payload(
                    component, views[component],
                    interval=cfg.grid_interval,
                    variance_threshold=cfg.variance_threshold,
                    max_k=cfg.max_clusters,
                    seed=self.seed,
                )
                for component in frame.components
                if component in changed
            ]))

            clusterings: dict[str, ComponentClustering] = {}
            reclustered: list[str] = []
            reused: list[str] = []
            for component in frame.components:
                if component in changed:
                    clusterings[component] = produced[component]
                    self.drift.rebase(component, produced[component],
                                      views[component])
                    reclustered.append(component)
                else:
                    # Unreached when previous is None: every component
                    # is then in ``changed`` with reason "initial".
                    assert previous is not None
                    clusterings[component] = \
                        previous.clusterings[component]
                    reused.append(component)
        self._recluster_seconds.observe(recluster_span.elapsed,
                                        executor=self.executor.kind)

        with self.tracer.span("depgraph"):
            touched = restricted_call_graph(call_graph, changed)
            fresh = extract_dependencies(
                frame, touched, clusterings,
                alpha=cfg.granger_alpha, lags=cfg.granger_lags,
                interval=cfg.grid_interval,
                filter_bidirectional=cfg.filter_bidirectional,
            )
            if previous is None:
                graph, edges_reused = fresh, 0
            else:
                graph, edges_reused = merge_dependency_graphs(
                    previous.dependency_graph, fresh, changed,
                    clusterings.keys(),
                )

        for reason in sorted(set(reasons.values())):
            self._reclustered_total.inc(
                sum(1 for r in reasons.values() if r == reason),
                reason=reason,
            )
        self._reused_total.inc(len(reused))

        analysis = WindowAnalysis(
            index=index, start=start, end=end,
            frame=frame, call_graph=call_graph,
            clusterings=clusterings, dependency_graph=graph,
            reclustered=sorted(reclustered), reused=sorted(reused),
            recluster_reasons=reasons, drift_readings=drift_readings,
            edges_retested=len(fresh), edges_reused=edges_reused,
            analysis_seconds=total.discard(),
            seed=self.seed,
        )
        self._analysis_seconds.observe(analysis.analysis_seconds)
        self.previous = analysis
        self._windows_since_refresh += 1
        return analysis
