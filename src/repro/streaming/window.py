"""Bounded per-metric ring buffers and the sharded window store.

The streaming engine must survive unbounded ingestion with bounded
memory.  Every metric gets a :class:`RingSeries`: a numpy-backed ring
holding at most ``max_points`` samples and at most ``retention``
seconds of history (whichever bound bites first).  A
:class:`WindowStore` shards the rings by component -- mirroring how the
analysis itself is per-component -- and can snapshot any time window
into the :class:`~repro.metrics.timeseries.MetricFrame` the batch
analysis steps already consume, so the windowed analyzer reuses the
exact Step-#2/#3 code paths.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.timeseries import MetricFrame, MetricKey, TimeSeries

#: Initial ring capacity (grows by doubling up to ``max_points``).
_INITIAL_CAPACITY = 64


class RingSeries:
    """Recent samples of one metric, bounded in count and age.

    Storage is a pair of numpy buffers with a live ``[start, end)``
    region.  Appends are vectorized; eviction advances ``start`` (O(1))
    and the buffer is compacted only when the dead prefix would block
    an insertion, keeping amortized cost constant per sample.
    """

    __slots__ = ("key", "retention", "max_points",
                 "_times", "_values", "_start", "_end", "evicted",
                 "_pool", "_loc")

    def __init__(self, key: MetricKey, retention: float = 120.0,
                 max_points: int = 4096):
        if retention <= 0:
            raise ValueError("retention must be positive")
        if max_points < 8:
            raise ValueError("max_points must be >= 8")
        self.key = key
        self.retention = retention
        self.max_points = max_points
        capacity = min(_INITIAL_CAPACITY, max_points)
        self._times = np.empty(capacity, dtype=float)
        self._values = np.empty(capacity, dtype=float)
        self._start = 0
        self._end = 0
        self.evicted = 0
        """Samples dropped so far by either bound (observability)."""

        self._pool = None
        """Attached :class:`repro.parallel.shm.SegmentPool` (or None)."""

        self._loc = None
        """Where this ring's buffers live inside the pool's segments."""

    def __len__(self) -> int:
        return self._end - self._start

    def extend(self, times, values) -> None:
        """Bulk-append ordered samples, then enforce both bounds."""
        t = np.asarray(times, dtype=float).reshape(-1)
        v = np.asarray(values, dtype=float).reshape(-1)
        if t.size != v.size:
            raise ValueError("times and values must have equal length")
        if t.size == 0:
            return
        if np.any(np.diff(t) < 0):
            raise ValueError("ring writes require non-decreasing times")
        if len(self) and t[0] < self._times[self._end - 1]:
            raise ValueError(
                f"out-of-order ring write at t={t[0]} "
                f"(last t={self._times[self._end - 1]})"
            )
        if t.size > self.max_points:
            # The batch alone overflows the ring: only its tail survives.
            self.evicted += t.size - self.max_points
            t, v = t[-self.max_points:], v[-self.max_points:]

        # Age bound, relative to the newest incoming sample -- applied
        # to the stored samples and to the batch itself.
        cutoff = t[-1] - self.retention
        self.evict_before(cutoff)
        stale = int(np.searchsorted(t, cutoff, side="left"))
        if stale:
            self.evicted += stale
            t, v = t[stale:], v[stale:]
        # Count bound: make room for the incoming batch.
        overflow = len(self) + t.size - self.max_points
        if overflow > 0:
            self._start += overflow
            self.evicted += overflow

        live = self._end - self._start
        need = live + t.size
        if self._end + t.size > self._times.size:
            if need > self._times.size:
                capacity = min(max(2 * self._times.size, need),
                               max(self.max_points, need))
                new_times = np.empty(capacity, dtype=float)
                new_values = np.empty(capacity, dtype=float)
            else:
                new_times, new_values = self._times, self._values
            new_times[:live] = self._times[self._start:self._end]
            new_values[:live] = self._values[self._start:self._end]
            self._times, self._values = new_times, new_values
            self._start, self._end = 0, live
        self._times[self._end:self._end + t.size] = t
        self._values[self._end:self._end + v.size] = v
        self._end += int(t.size)

    def append(self, time: float, value: float) -> None:
        """Single-sample convenience wrapper around :meth:`extend`."""
        self.extend([time], [value])

    def evict_before(self, cutoff: float) -> int:
        """Drop samples older than ``cutoff``; returns how many."""
        live = self._times[self._start:self._end]
        dropped = int(np.searchsorted(live, cutoff, side="left"))
        self._start += dropped
        self.evicted += dropped
        return dropped

    # -- shared-memory residency ---------------------------------------

    def attach_shm(self, pool) -> None:
        """Move this ring's buffers into ``pool``'s shared segments.

        The shared buffers are allocated at the *fixed* ``max_points``
        capacity up front: the count bound guarantees the live region
        never exceeds it, so :meth:`extend` only ever compacts in
        place and the buffers never move -- which is what keeps the
        window references the shm transport hands to workers valid for
        the ring's whole life.  Idempotent per pool.
        """
        if self._pool is pool:
            return
        if self._pool is not None:
            self.detach_shm()
        times, values, loc = pool.alloc_ring(self.max_points)
        live = self._end - self._start
        times[:live] = self._times[self._start:self._end]
        values[:live] = self._values[self._start:self._end]
        self._times, self._values = times, values
        self._start, self._end = 0, live
        self._pool = pool
        self._loc = loc

    def detach_shm(self) -> None:
        """Copy the live region back to private memory (no-op bare).

        Must run before the pool closes: it drops the last parent-side
        numpy views into the ring's segment, so unmapping cannot hit a
        live exported buffer.
        """
        if self._pool is None:
            return
        live = self._end - self._start
        times = np.empty(max(live, _INITIAL_CAPACITY), dtype=float)
        values = np.empty(max(live, _INITIAL_CAPACITY), dtype=float)
        times[:live] = self._times[self._start:self._end]
        values[:live] = self._values[self._start:self._end]
        self._times, self._values = times, values
        self._start, self._end = 0, live
        self._pool.release_ring(self._loc)
        self._pool = None
        self._loc = None

    @property
    def times(self) -> np.ndarray:
        """Retained timestamps, oldest first (copy)."""
        return self._times[self._start:self._end].copy()

    @property
    def values(self) -> np.ndarray:
        """Retained values, oldest first (copy)."""
        return self._values[self._start:self._end].copy()

    def span(self) -> tuple[float, float]:
        """(oldest, newest) retained timestamp."""
        if not len(self):
            raise ValueError("ring holds no samples")
        return float(self._times[self._start]), \
            float(self._times[self._end - 1])

    def window(self, start: float, end: float) -> TimeSeries:
        """Retained samples with ``start <= t <= end`` as a TimeSeries.

        The returned series is always a private copy (stable however
        the ring advances).  When the ring lives in shared memory the
        copy is annotated with current-epoch references into the ring
        buffers, which the shm transport ships to workers instead of
        the samples.
        """
        live_t = self._times[self._start:self._end]
        lo = int(np.searchsorted(live_t, start, side="left"))
        hi = int(np.searchsorted(live_t, end, side="right"))
        lo += self._start
        hi += self._start
        ts = TimeSeries(self.key, self._times[lo:hi],
                        self._values[lo:hi])
        if self._pool is None or lo == hi:
            return ts
        from repro.parallel.shm import ShmTimeSeries

        times_ref, values_ref = self._pool.ring_window_refs(
            self._loc, lo, hi)
        return ShmTimeSeries.annotate(ts, times_ref, values_ref)


class WindowStore:
    """Per-component shards of :class:`RingSeries` (the engine's memory).

    With a ``backend``
    (:class:`~repro.persistence.backend.StorageBackend`), every
    ingested batch is also written through to durable storage, and
    :meth:`snapshot` transparently serves windows that reach past the
    rings' retention from the backend instead -- long retentions
    survive restarts and windows can be replayed across runs while the
    hot analysis path stays on the in-RAM rings.
    """

    def __init__(self, retention: float = 120.0,
                 max_points_per_series: int = 4096,
                 backend=None):
        self.retention = retention
        self.max_points_per_series = max_points_per_series
        self.backend = backend
        self._shm_pool = None
        self._shards: dict[str, dict[str, RingSeries]] = {}
        self.points_ingested = 0
        self.batches_ingested = 0
        self.backend_reads = 0
        """Series windows served from the backend instead of a ring."""

        self.backend_writes = 0
        """Batches written through to the durable backend."""

        self.first_time: float | None = None
        """Earliest timestamp ever ingested (survives eviction)."""

    # -- ingestion (the bus-subscriber protocol) -----------------------

    def ingest(self, component: str, metric: str, times, values) -> None:
        """Accept one flushed batch from the ingestion bus."""
        shard = self._shards.setdefault(component, {})
        ring = shard.get(metric)
        if ring is None:
            ring = RingSeries(MetricKey(component, metric),
                              retention=self.retention,
                              max_points=self.max_points_per_series)
            if self._shm_pool is not None:
                ring.attach_shm(self._shm_pool)
            shard[metric] = ring
        t = np.asarray(times, dtype=float).reshape(-1)
        v = np.asarray(values, dtype=float).reshape(-1)
        if not t.size:
            return
        if self.backend is not None:
            self.backend.write(component, metric, t, v)
            self.backend_writes += 1
        ring.extend(t, v)
        self.points_ingested += int(t.size)
        self.batches_ingested += 1
        if self.first_time is None or t[0] < self.first_time:
            self.first_time = float(t[0])

    # -- bookkeeping ---------------------------------------------------

    @property
    def components(self) -> list[str]:
        """Sorted component names currently sharded."""
        return sorted(self._shards)

    def metrics_of(self, component: str) -> list[str]:
        """Sorted metric names of one component's shard."""
        return sorted(self._shards.get(component, {}))

    def series(self, component: str, metric: str) -> RingSeries | None:
        """One ring, or None when unknown."""
        return self._shards.get(component, {}).get(metric)

    def series_count(self) -> int:
        """Number of live rings."""
        return sum(len(shard) for shard in self._shards.values())

    def total_points(self) -> int:
        """Samples currently retained across every ring."""
        return sum(len(ring) for shard in self._shards.values()
                   for ring in shard.values())

    def total_evicted(self) -> int:
        """Samples dropped so far by retention/count bounds."""
        return sum(ring.evicted for shard in self._shards.values()
                   for ring in shard.values())

    def latest_time(self) -> float | None:
        """Newest retained timestamp, or None when empty."""
        newest = None
        for shard in self._shards.values():
            for ring in shard.values():
                if len(ring):
                    last = ring.span()[1]
                    newest = last if newest is None else max(newest, last)
        return newest

    def stalest_series_time(self) -> float | None:
        """Newest timestamp of the *stalest* non-empty series.

        Ring eviction is per-series relative to that series' own
        newest sample, so a series that went quiet (vanished
        component, sparse exporter) retains old samples long after the
        global clock moved on.  Journal retirement must therefore be
        anchored here, not at :meth:`latest_time`: everything any ring
        still retains is newer than ``stalest - retention``.
        """
        stalest = None
        for shard in self._shards.values():
            for ring in shard.values():
                if len(ring):
                    last = ring.span()[1]
                    stalest = last if stalest is None \
                        else min(stalest, last)
        return stalest

    def evict_before(self, cutoff: float) -> int:
        """Force an age-based eviction pass over every ring."""
        return sum(ring.evict_before(cutoff)
                   for shard in self._shards.values()
                   for ring in shard.values())

    def flush_backend(self) -> None:
        """Make write-through storage durable (no-op without backend).

        With an asynchronous writer
        (:class:`repro.parallel.writer.BatchingWriter`) in front of
        the backend this also drains its queue -- the checkpoint
        policy calls it so every sample a checkpoint covers is on disk
        before the checkpoint lands.
        """
        if self.backend is not None:
            self.backend.flush()

    # -- shared-memory residency ---------------------------------------

    def attach_shm_pool(self, pool) -> None:
        """Home every ring (current and future) in ``pool``'s segments.

        From here on, :meth:`snapshot` opens a fresh coherence epoch
        on the pool and the windows it materializes carry shm
        references the shard executor ships instead of samples.  The
        pool's per-``map`` auto-epoch is turned off -- one window's
        snapshot precedes *all* of that window's shard maps (drift
        scoring, re-clustering), and they all read the same frozen
        ring state.
        """
        self._shm_pool = pool
        pool.auto_epoch = False
        for shard in self._shards.values():
            for ring in shard.values():
                ring.attach_shm(pool)

    def detach_shm(self) -> None:
        """Move every ring back to private memory (no-op bare).

        Run *before* the executor (and with it the pool) closes, so
        no parent-side numpy view pins a shared segment's mapping.
        """
        if self._shm_pool is None:
            return
        for shard in self._shards.values():
            for ring in shard.values():
                ring.detach_shm()
        self._shm_pool = None

    # -- analysis hand-off ---------------------------------------------

    def _series_window(self, ring: RingSeries, start: float,
                       end: float) -> TimeSeries:
        """One series' window, from the ring or the durable backend.

        The backend is consulted only when samples the window needs
        were already evicted from the ring -- i.e. the ring's retained
        data starts after ``start`` and something was dropped.
        """
        if self.backend is not None and ring.evicted \
                and (not len(ring) or start < ring.span()[0]):
            self.backend_reads += 1
            return self.backend.query(ring.key.component,
                                      ring.key.metric, start, end)
        return ring.window(start, end)

    def snapshot(self, start: float = float("-inf"),
                 end: float = float("inf")) -> MetricFrame:
        """Materialize ``[start, end]`` as a MetricFrame for analysis.

        Only non-empty series are included, so components that went
        silent simply vanish from the frame (and hence the analysis).

        With a shared-memory pool attached, every snapshot opens a new
        coherence epoch: the window references minted below stay valid
        exactly until the next snapshot, which is the synchronous
        analysis span they are consumed in.
        """
        if self._shm_pool is not None:
            self._shm_pool.begin_epoch()
        frame = MetricFrame()
        for shard in self._shards.values():
            for ring in shard.values():
                ts = self._series_window(ring, start, end)
                if len(ts):
                    frame.add(ts)
        return frame
