"""Randomized and elementary workload profiles.

The robustness experiments load ShareLatex "five times with random
workloads" (Section 6.1): randomness avoids baking workload assumptions
into the model and gives a worst case for clustering consistency
(Figure 3).  :class:`RandomWorkload` produces such a load: piecewise
levels re-drawn at random change points, smoothed and perturbed.

The elementary profiles (:func:`constant_rate`, :func:`ramp_rate`) are
used by tests and examples.
"""

from __future__ import annotations

import numpy as np


class RandomWorkload:
    """Random piecewise load profile, deterministic per seed."""

    def __init__(
        self,
        duration: float = 600.0,
        min_rate: float = 5.0,
        max_rate: float = 60.0,
        mean_segment: float = 45.0,
        smoothing: float = 8.0,
        seed: int = 0,
    ):
        if duration <= 0:
            raise ValueError("duration must be positive")
        if not 0 <= min_rate < max_rate:
            raise ValueError("need 0 <= min_rate < max_rate")
        self.duration = duration
        rng = np.random.default_rng(seed)

        # Draw change points and levels.
        times = [0.0]
        while times[-1] < duration:
            times.append(times[-1] + float(rng.exponential(mean_segment)))
        levels = rng.uniform(min_rate, max_rate, size=len(times))

        # Render to a 1 s grid and smooth with a moving average so the
        # simulated system sees gradual transitions.
        grid = np.arange(0.0, duration + 1.0, 1.0)
        raw = np.empty_like(grid)
        seg = 0
        for i, t in enumerate(grid):
            while seg + 1 < len(times) and times[seg + 1] <= t:
                seg += 1
            raw[i] = levels[seg]
        window = max(int(smoothing), 1)
        kernel = np.ones(window) / window
        smooth = np.convolve(raw, kernel, mode="same")
        wobble = rng.normal(0.0, 0.03 * (max_rate - min_rate),
                            size=smooth.size)
        self._grid_rate = np.clip(smooth + wobble, 0.0, None)

    def rate(self, now: float) -> float:
        """Request rate at time ``now``."""
        if now < 0:
            return 0.0
        idx = min(int(now), len(self._grid_rate) - 1)
        return float(self._grid_rate[idx])

    def __call__(self, now: float) -> float:
        return self.rate(now)


def constant_rate(rate: float):
    """A constant-rate workload function."""
    if rate < 0:
        raise ValueError("rate must be non-negative")
    return lambda now: rate


def ramp_rate(start_rate: float, end_rate: float, duration: float):
    """Linear ramp from ``start_rate`` to ``end_rate`` over ``duration``."""
    if duration <= 0:
        raise ValueError("duration must be positive")

    def fn(now: float) -> float:
        frac = min(max(now / duration, 0.0), 1.0)
        return start_rate + (end_rate - start_rate) * frac
    return fn
