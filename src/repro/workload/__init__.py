"""Workload generators (Sieve Step #1 needs application-specific load).

* :mod:`repro.workload.locust` -- a Locust-analog virtual-user load
  generator (the paper's authors wrote a 1 041-LoC Locust harness for
  ShareLatex).
* :mod:`repro.workload.worldcup` -- a synthetic trace statistically
  shaped like the WorldCup'98 HTTP trace hour used for the autoscaling
  experiment (Section 6.2): client-IP sessions enqueued by timestamp,
  with a pronounced traffic spike.
* :mod:`repro.workload.rally` -- a Rally-analog task runner providing
  the ``boot_and_delete`` workload of the RCA experiment (Section 6.3).
* :mod:`repro.workload.profiles` -- randomized workload profiles for
  the robustness measurements (Figure 3 loads ShareLatex "five times
  with random workloads").
"""

from repro.workload.locust import LocustLoadGenerator, UserBehavior
from repro.workload.profiles import RandomWorkload, constant_rate, ramp_rate
from repro.workload.rally import BootAndDeleteTask, RallyRunner
from repro.workload.worldcup import WorldCupTrace

__all__ = [
    "BootAndDeleteTask",
    "LocustLoadGenerator",
    "RallyRunner",
    "RandomWorkload",
    "UserBehavior",
    "WorldCupTrace",
    "constant_rate",
    "ramp_rate",
]
