"""Locust-analog virtual-user load generation.

Locust simulates *virtual users*: each user executes a behavior loop
(action, think, action, ...) and the population size is ramped over
time.  The aggregate arrival-rate function this produces -- users(t)
times actions-per-second per user, with stochastic wobble -- is what
the fluid simulator consumes.

``LocustLoadGenerator`` is deterministic for a given seed, so repeated
Sieve measurements with the same generator are reproducible while
different seeds give the independent "random workload" runs of the
robustness experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class UserBehavior:
    """One virtual user's behavior loop."""

    actions_per_cycle: float = 4.0
    """Requests issued per behavior cycle."""

    think_time: float = 3.0
    """Mean pause between cycles, seconds."""

    def request_rate(self) -> float:
        """Steady-state requests/second of one user."""
        return self.actions_per_cycle / max(self.think_time, 1e-6)


class LocustLoadGenerator:
    """Population of virtual users with a ramp profile.

    The population follows ``spawn_rate`` up to ``users`` (like Locust's
    ``--users/--spawn-rate``), then holds; the instantaneous request
    rate additionally wobbles with smooth noise so that the load is not
    perfectly periodic (which would confuse stationarity tests).
    """

    def __init__(
        self,
        users: int = 50,
        spawn_rate: float = 5.0,
        behavior: UserBehavior | None = None,
        wobble: float = 0.15,
        seed: int = 0,
    ):
        if users < 1:
            raise ValueError("need at least one user")
        if spawn_rate <= 0:
            raise ValueError("spawn_rate must be positive")
        self.users = users
        self.spawn_rate = spawn_rate
        self.behavior = behavior or UserBehavior()
        self.wobble = wobble
        rng = np.random.default_rng(seed)
        # Pre-draw smooth noise as a random Fourier series.
        self._noise_freqs = rng.uniform(0.005, 0.08, size=6)
        self._noise_phases = rng.uniform(0, 2 * np.pi, size=6)
        self._noise_amps = rng.uniform(0.2, 1.0, size=6)
        self._noise_amps /= self._noise_amps.sum()

    def active_users(self, now: float) -> float:
        """User population at time ``now`` (ramping then steady)."""
        if now < 0:
            return 0.0
        return min(self.spawn_rate * now, float(self.users))

    def _smooth_noise(self, now: float) -> float:
        """Deterministic smooth noise in roughly [-1, 1]."""
        return float(np.sum(
            self._noise_amps
            * np.sin(2 * np.pi * self._noise_freqs * now + self._noise_phases)
        ))

    def rate(self, now: float) -> float:
        """Aggregate request rate (requests/second) at time ``now``."""
        base = self.active_users(now) * self.behavior.request_rate()
        return max(base * (1.0 + self.wobble * self._smooth_noise(now)), 0.0)

    def __call__(self, now: float) -> float:
        return self.rate(now)
