"""Synthetic WorldCup'98-like HTTP trace (autoscaling experiment).

The paper replays one hour of the 1998 soccer World Cup HTTP trace to
drive the autoscaling case study (Section 6.2): "sessions in the HTTP
trace were identified by using the client IP.  Afterwards, we enqueued
the sessions based on their timestamp, where a virtual user was spawned
for the duration of each session and then stopped."

The original trace is not redistributable here, so this module generates
a statistically similar hour: session arrivals follow a time-varying
Poisson process whose intensity has the trace's signature shape -- a
baseline plateau, a steep match-kickoff spike, and a slow decay --
and each session contributes requests for its (log-normal) duration.
The resulting ``rate(t)`` is the superposition of active sessions, the
same construction the paper uses.
"""

from __future__ import annotations

import numpy as np


class WorldCupTrace:
    """One synthetic trace hour as a deterministic rate function."""

    def __init__(
        self,
        duration: float = 3600.0,
        base_sessions_per_s: float = 2.0,
        spike_sessions_per_s: float = 18.0,
        spike_start_frac: float = 0.45,
        spike_length_frac: float = 0.2,
        session_duration_mean: float = 90.0,
        requests_per_session_per_s: float = 1.0,
        wobble: float = 0.22,
        wobble_period: float = 90.0,
        seed: int = 0,
    ):
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.duration = duration
        self.requests_per_session_per_s = requests_per_session_per_s
        self.wobble = wobble
        self.wobble_period = wobble_period
        rng = np.random.default_rng(seed)
        self._wobble_phase = float(rng.uniform(0, 2 * np.pi))

        # Session arrival intensity over time.
        spike_start = spike_start_frac * duration
        spike_end = spike_start + spike_length_frac * duration

        def intensity(t: float) -> float:
            lam = base_sessions_per_s
            if spike_start <= t < spike_end:
                ramp = min((t - spike_start) / (0.15 * (spike_end -
                                                        spike_start)), 1.0)
                lam += spike_sessions_per_s * ramp
            elif t >= spike_end:
                lam += spike_sessions_per_s * np.exp(
                    -(t - spike_end) / (0.2 * duration)
                )
            return lam

        # Draw session arrivals by thinning a homogeneous process.
        lam_max = base_sessions_per_s + spike_sessions_per_s
        t = 0.0
        starts: list[float] = []
        while t < duration:
            t += float(rng.exponential(1.0 / lam_max))
            if t < duration and rng.random() < intensity(t) / lam_max:
                starts.append(t)
        durations = rng.lognormal(
            mean=np.log(session_duration_mean), sigma=0.6, size=len(starts)
        )
        ends = np.asarray(starts) + durations

        self.session_starts = np.asarray(starts)
        self.session_ends = ends
        self.n_sessions = len(starts)

        # Precompute active-session counts on a 1 s grid for O(1) lookup.
        grid = np.arange(0.0, duration + 1.0, 1.0)
        active = np.zeros_like(grid)
        start_counts, _ = np.histogram(self.session_starts,
                                       bins=np.append(grid, duration + 2))
        end_counts, _ = np.histogram(np.clip(self.session_ends, 0, duration),
                                     bins=np.append(grid, duration + 2))
        active = np.cumsum(start_counts) - np.cumsum(end_counts)
        self._grid = grid
        self._active = np.maximum(active, 0)

    def active_sessions(self, now: float) -> float:
        """Concurrent sessions (virtual users) at time ``now``."""
        if now < 0 or now > self.duration:
            return 0.0
        idx = min(int(now), len(self._active) - 1)
        return float(self._active[idx])

    def rate(self, now: float) -> float:
        """Aggregate request rate at time ``now`` (requests/second).

        Per-session activity is bursty (page loads cluster, halftime
        lulls), which shows up as a slow multiplicative wobble on top
        of the active-session count.
        """
        swing = 1.0 + self.wobble * np.sin(
            2.0 * np.pi * now / self.wobble_period + self._wobble_phase
        )
        return self.active_sessions(now) \
            * self.requests_per_session_per_s * float(swing)

    def __call__(self, now: float) -> float:
        return self.rate(now)

    def peak_window(self, length: float = 300.0) -> tuple[float, float]:
        """The ``length``-second window with the highest mean load.

        The paper calibrates autoscaling thresholds on "a 5-minute
        sample from the peak load" of the trace.
        """
        window = max(int(length), 1)
        if window >= len(self._active):
            return 0.0, self.duration
        sums = np.convolve(self._active, np.ones(window), mode="valid")
        start = int(np.argmax(sums))
        return float(start), float(start + window)
