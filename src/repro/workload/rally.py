"""Rally-analog task workload (OpenStack RCA experiment).

OpenStack ships Rally as its official benchmark suite; the paper drives
both the correct and the faulty version with 100 iterations of the
``boot_and_delete`` task, which "launches 5 VMs concurrently and deletes
them after 15-25 seconds" (Section 6.3).

A task iteration maps onto the control plane as a burst of API activity
(boot: authenticate, create server, allocate port, fetch image, ...)
followed by idle wait and a smaller deletion burst.  The runner
superposes the active iterations into the external request-rate signal
the simulator consumes, plus a small control-plane hum (agent report
cycles) so that idle-period metrics stay alive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BootAndDeleteTask:
    """Shape of one boot_and_delete iteration."""

    vms: int = 5
    boot_duration: float = 8.0
    """Seconds of API activity to boot one batch of VMs."""

    wait_min: float = 15.0
    wait_max: float = 25.0
    delete_duration: float = 4.0

    boot_requests_per_vm: float = 12.0
    """Control-plane API calls to boot one VM."""

    delete_requests_per_vm: float = 5.0

    def boot_rate(self) -> float:
        """Request rate during the boot phase of one iteration."""
        return self.vms * self.boot_requests_per_vm / self.boot_duration

    def delete_rate(self) -> float:
        """Request rate during the delete phase of one iteration."""
        return self.vms * self.delete_requests_per_vm / self.delete_duration


class RallyRunner:
    """Schedules ``times`` iterations of a task back to back."""

    def __init__(
        self,
        task: BootAndDeleteTask | None = None,
        times: int = 100,
        concurrency: int = 1,
        background_rate: float = 2.0,
        seed: int = 0,
    ):
        if times < 1 or concurrency < 1:
            raise ValueError("times and concurrency must be >= 1")
        self.task = task or BootAndDeleteTask()
        self.times = times
        self.concurrency = concurrency
        self.background_rate = background_rate
        rng = np.random.default_rng(seed)

        # Lay out iterations: each worker runs its share sequentially.
        self.iterations: list[tuple[float, float, float]] = []
        worker_clock = np.zeros(concurrency)
        for _ in range(times):
            worker = int(np.argmin(worker_clock))
            start = float(worker_clock[worker])
            wait = float(rng.uniform(self.task.wait_min, self.task.wait_max))
            boot_end = start + self.task.boot_duration
            delete_start = boot_end + wait
            delete_end = delete_start + self.task.delete_duration
            self.iterations.append((start, boot_end, delete_start))
            worker_clock[worker] = delete_end + float(rng.uniform(0.5, 1.5))
        self.duration = float(worker_clock.max())

        # Precompute the rate signal on a fine grid: rate() is called
        # once per simulation step and a per-call scan over all
        # iterations would dominate the run time.
        self._grid_step = 0.1
        n_cells = int(np.ceil(self.duration / self._grid_step)) + 2
        grid_rate = np.full(n_cells, self.background_rate)
        for start, boot_end, delete_start in self.iterations:
            lo = int(start / self._grid_step)
            hi = int(boot_end / self._grid_step)
            grid_rate[lo:hi] += self.task.boot_rate()
            dlo = int(delete_start / self._grid_step)
            dhi = int((delete_start + self.task.delete_duration)
                      / self._grid_step)
            grid_rate[dlo:dhi] += self.task.delete_rate()
        self._grid_rate = grid_rate

    def rate(self, now: float) -> float:
        """External API request rate at time ``now``."""
        if now < 0 or now > self.duration:
            return self.background_rate
        idx = min(int(now / self._grid_step), len(self._grid_rate) - 1)
        return float(self._grid_rate[idx])

    def __call__(self, now: float) -> float:
        return self.rate(now)
