"""Monitoring infrastructure substrate (Telegraf / InfluxDB analogs).

The original Sieve deployment collected metrics with Telegraf and stored
them in InfluxDB; Table 3 of the paper reports the monitoring pipeline's
own resource consumption (CPU time, database size, network in/out)
before and after Sieve's metric reduction.  This subpackage provides:

* :mod:`repro.metrics.timeseries` -- the :class:`TimeSeries` value type
  and the :class:`MetricFrame` collection keyed by (component, metric).
* :mod:`repro.metrics.accounting` -- meters for the CPU / storage /
  network cost of running the monitoring pipeline itself.
* :mod:`repro.metrics.store` -- an in-memory time-series database with
  InfluxDB-style writes, queries and resource accounting.
* :mod:`repro.metrics.collector` -- the scraping agent that moves
  metric samples from application components into the store.
"""

from repro.metrics.accounting import CostModel, ResourceUsage
from repro.metrics.collector import Collector
from repro.metrics.store import MetricsStore
from repro.metrics.timeseries import MetricFrame, MetricKey, TimeSeries

__all__ = [
    "Collector",
    "CostModel",
    "MetricFrame",
    "MetricKey",
    "MetricsStore",
    "ResourceUsage",
    "TimeSeries",
]
