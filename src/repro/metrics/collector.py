"""Metric scraping agent (the Telegraf of this reproduction).

The collector periodically samples every exporter it is attached to and
appends the samples to a :class:`~repro.metrics.timeseries.MetricFrame`
(and, optionally, a metered :class:`~repro.metrics.store.MetricsStore`).
Exporters are anything with a ``name`` attribute and a
``sample_metrics(now)`` method returning ``{metric_name: value}`` --
the simulator's microservice components implement this protocol.

Real collectors sample imperfectly: scrape cycles are jittered and
occasionally drop (timeouts, lost packets).  Both effects are modelled
here because Sieve's preprocessing (cubic-spline gap filling and 500 ms
re-gridding, Section 3.2) exists precisely to undo them.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from repro.metrics.store import MetricsStore
from repro.metrics.timeseries import MetricFrame


class MetricExporter(Protocol):
    """Anything the collector can scrape."""

    name: str

    def sample_metrics(self, now: float) -> dict[str, float]:
        """Return the current value of every exported metric."""
        ...  # pragma: no cover - protocol definition


class MetricSink(Protocol):
    """Anything the collector can push scrape batches to (an ingestion
    bus, see :class:`repro.streaming.bus.IngestionBus`)."""

    def publish(self, component: str, time: float,
                metrics: dict[str, float]) -> None:
        """Accept one component's scrape batch."""
        ...  # pragma: no cover - protocol definition


class Collector:
    """Scrapes exporters on a fixed interval with jitter and drops.

    Besides recording into its own frame/store, the collector can
    *push* every scrape batch to a ``bus`` sink (streaming mode).  With
    ``record_frame=False`` the cumulative frame is skipped entirely so
    a long-running streaming collector keeps bounded memory -- retention
    then lives in the bus's window store.
    """

    def __init__(
        self,
        exporters: Sequence[MetricExporter],
        interval: float = 0.5,
        jitter: float = 0.05,
        drop_probability: float = 0.01,
        seed: int = 0,
        store: MetricsStore | None = None,
        bus: MetricSink | None = None,
        record_frame: bool = True,
    ):
        if interval <= 0:
            raise ValueError("scrape interval must be positive")
        if not 0 <= drop_probability < 1:
            raise ValueError("drop_probability must lie in [0, 1)")
        self.exporters = list(exporters)
        self.interval = interval
        self.jitter = jitter
        self.drop_probability = drop_probability
        self.store = store
        self.bus = bus
        self.record_frame = record_frame
        self.frame = MetricFrame()
        self._rng = np.random.default_rng(seed)
        self.scrapes = 0
        self.dropped_scrapes = 0

    def scrape_once(self, now: float) -> None:
        """Sample every exporter at (jittered) time ``now``."""
        for exporter in self.exporters:
            if self._rng.random() < self.drop_probability:
                self.dropped_scrapes += 1
                continue
            at = now + float(self._rng.uniform(0.0, self.jitter))
            batch = exporter.sample_metrics(at)
            if self.record_frame:
                for metric, value in batch.items():
                    self.frame.series(exporter.name, metric).append(at, value)
            if self.store is not None:
                for metric, value in batch.items():
                    self.store.write_point(exporter.name, metric, at, value)
            if self.bus is not None:
                self.bus.publish(exporter.name, at, batch)
        self.scrapes += 1

    def scrape_times(self, start: float, end: float) -> np.ndarray:
        """The scheduled scrape instants for a ``[start, end]`` window."""
        if end < start:
            raise ValueError("window end precedes start")
        n = int(np.floor((end - start) / self.interval)) + 1
        return start + self.interval * np.arange(n)

    def run(self, start: float, end: float) -> MetricFrame:
        """Scrape the full window and return the collected frame."""
        for t in self.scrape_times(start, end):
            self.scrape_once(float(t))
        return self.frame
