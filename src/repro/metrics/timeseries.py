"""Time-series value types shared by the whole pipeline.

A :class:`TimeSeries` is an append-friendly (timestamps, values) pair
tagged with the exporting component and metric name.  A
:class:`MetricFrame` is the collection Sieve's analysis steps consume:
every metric of every component over one measurement run, with helpers
for per-component views, variance filtering and grid alignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.stats.interpolate import DEFAULT_GRID_INTERVAL, resample_to_grid
from repro.stats.timeseries_ops import DEFAULT_VARIANCE_THRESHOLD


@dataclass(frozen=True, order=True)
class MetricKey:
    """Identity of one monitored metric: which component exports what."""

    component: str
    metric: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"{self.component}/{self.metric}"


class TimeSeries:
    """One monitored metric as an ordered sequence of (time, value) samples.

    Samples live in numpy buffers with amortized-doubling capacity, so
    both the single-sample :meth:`append` of the scraping path and the
    bulk :meth:`extend` of replay/streaming ingestion stay cheap.
    """

    __slots__ = ("key", "_times", "_values", "_n")

    def __init__(self, key: MetricKey,
                 times: Iterable[float] = (),
                 values: Iterable[float] = ()):
        self.key = key
        if not isinstance(times, np.ndarray):
            times = list(times)
        if not isinstance(values, np.ndarray):
            values = list(values)
        self._times = np.asarray(times, dtype=float).reshape(-1).copy()
        self._values = np.asarray(values, dtype=float).reshape(-1).copy()
        if self._times.size != self._values.size:
            raise ValueError("times and values must have equal length")
        if self._times.size > 1 and np.any(np.diff(self._times) < 0):
            raise ValueError("times must be non-decreasing")
        self._n = int(self._times.size)

    @classmethod
    def wrap(cls, key: MetricKey, times: np.ndarray,
             values: np.ndarray) -> "TimeSeries":
        """Adopt pre-validated arrays without copying them.

        The zero-copy constructor of the shared-memory shard transport
        (:mod:`repro.parallel.shm`): workers rebuild window series as
        views straight into shared segments.  The caller vouches that
        the arrays are equal-length float64 with non-decreasing times
        (they were validated when the ring ingested them); the wrapped
        series must be treated as read-only.
        """
        ts = cls.__new__(cls)
        ts.key = key
        ts._times = times
        ts._values = values
        ts._n = int(times.size)
        return ts

    def _grow(self, extra: int) -> None:
        """Ensure capacity for ``extra`` more samples."""
        need = self._n + extra
        capacity = self._times.size
        if need <= capacity:
            return
        new_capacity = max(need, 2 * capacity, 16)
        times = np.empty(new_capacity, dtype=float)
        values = np.empty(new_capacity, dtype=float)
        times[:self._n] = self._times[:self._n]
        values[:self._n] = self._values[:self._n]
        self._times, self._values = times, values

    def append(self, time: float, value: float) -> None:
        """Record one sample; samples must arrive in time order."""
        time = float(time)
        if self._n and time < self._times[self._n - 1]:
            raise ValueError(
                f"out-of-order sample at t={time} "
                f"(last t={self._times[self._n - 1]})"
            )
        self._grow(1)
        self._times[self._n] = time
        self._values[self._n] = float(value)
        self._n += 1

    def extend(self, times, values) -> None:
        """Bulk-append many samples in one vectorized operation.

        ``times`` must be non-decreasing and start no earlier than the
        last stored sample -- the same ordering contract as
        :meth:`append`, validated without a Python-level loop.
        """
        incoming_t = np.asarray(times, dtype=float).reshape(-1)
        incoming_v = np.asarray(values, dtype=float).reshape(-1)
        if incoming_t.size != incoming_v.size:
            raise ValueError("times and values must have equal length")
        if incoming_t.size == 0:
            return
        if np.any(np.diff(incoming_t) < 0):
            raise ValueError("extend() requires non-decreasing times")
        if self._n and incoming_t[0] < self._times[self._n - 1]:
            raise ValueError(
                f"out-of-order bulk write at t={incoming_t[0]} "
                f"(last t={self._times[self._n - 1]})"
            )
        self._grow(incoming_t.size)
        self._times[self._n:self._n + incoming_t.size] = incoming_t
        self._values[self._n:self._n + incoming_v.size] = incoming_v
        self._n += int(incoming_t.size)

    def __len__(self) -> int:
        return self._n

    @property
    def times(self) -> np.ndarray:
        """Sample timestamps as an array (copy)."""
        return self._times[:self._n].copy()

    @property
    def values(self) -> np.ndarray:
        """Sample values as an array (copy)."""
        return self._values[:self._n].copy()

    @property
    def times_view(self) -> np.ndarray:
        """Sample timestamps as a read-only view (no copy).

        For hot read paths (window reduction, drift scoring) that only
        ever *read* the samples; callers must not mutate the view.
        """
        return self._times[:self._n]

    @property
    def values_view(self) -> np.ndarray:
        """Sample values as a read-only view (no copy; see
        :attr:`times_view`)."""
        return self._values[:self._n]

    def variance(self) -> float:
        """Sample variance; 0.0 for fewer than two samples."""
        if self._n < 2:
            return 0.0
        return float(np.var(self._values[:self._n]))

    def is_unvarying(self,
                     threshold: float = DEFAULT_VARIANCE_THRESHOLD) -> bool:
        """True when the series fails Sieve's variance pre-filter."""
        return self.variance() <= threshold

    def resampled(self, interval: float = DEFAULT_GRID_INTERVAL,
                  start: float | None = None,
                  end: float | None = None) -> np.ndarray:
        """Values interpolated onto an equidistant grid (grid dropped)."""
        _, values = resample_to_grid(self.times, self.values,
                                     interval=interval, start=start, end=end)
        return values

    def window(self, start: float, end: float) -> "TimeSeries":
        """Sub-series restricted to ``start <= t <= end``."""
        lo = int(np.searchsorted(self._times[:self._n], start, side="left"))
        hi = int(np.searchsorted(self._times[:self._n], end, side="right"))
        return TimeSeries(self.key, self._times[lo:hi], self._values[lo:hi])

    def last_value(self, default: float = 0.0) -> float:
        """Most recent sample value, or ``default`` when empty."""
        return float(self._values[self._n - 1]) if self._n else default

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return f"TimeSeries({self.key}, n={len(self)})"


class MetricFrame:
    """All metrics of one measurement run, keyed by (component, metric)."""

    def __init__(self) -> None:
        self._series: dict[MetricKey, TimeSeries] = {}

    def series(self, component: str, metric: str) -> TimeSeries:
        """Return (creating if needed) the series for a metric."""
        key = MetricKey(component, metric)
        if key not in self._series:
            self._series[key] = TimeSeries(key)
        return self._series[key]

    def add(self, ts: TimeSeries) -> None:
        """Insert a fully-built series; refuses duplicates."""
        if ts.key in self._series:
            raise KeyError(f"duplicate series {ts.key}")
        self._series[ts.key] = ts

    def __contains__(self, key: MetricKey) -> bool:
        return key in self._series

    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self) -> Iterator[TimeSeries]:
        return iter(self._series.values())

    def get(self, key: MetricKey) -> TimeSeries | None:
        """Series for ``key`` or None."""
        return self._series.get(key)

    @property
    def components(self) -> list[str]:
        """Sorted component names present in the frame."""
        return sorted({key.component for key in self._series})

    def metrics_of(self, component: str) -> list[str]:
        """Sorted metric names exported by ``component``."""
        return sorted(
            key.metric for key in self._series if key.component == component
        )

    def component_view(self, component: str) -> dict[str, TimeSeries]:
        """``metric name -> series`` mapping for one component."""
        return {
            key.metric: ts
            for key, ts in self._series.items()
            if key.component == component
        }

    def varying_metrics_of(
        self, component: str,
        threshold: float = DEFAULT_VARIANCE_THRESHOLD,
    ) -> dict[str, TimeSeries]:
        """Component view with unvarying metrics removed (Section 3.2)."""
        return {
            name: ts
            for name, ts in self.component_view(component).items()
            if not ts.is_unvarying(threshold)
        }

    def time_span(self) -> tuple[float, float]:
        """(earliest, latest) timestamp over all non-empty series."""
        starts, ends = [], []
        for ts in self._series.values():
            if len(ts):
                starts.append(ts.times[0])
                ends.append(ts.times[-1])
        if not starts:
            raise ValueError("frame holds no samples")
        return min(starts), max(ends)

    def total_samples(self) -> int:
        """Total number of samples across every series."""
        return sum(len(ts) for ts in self._series.values())


@dataclass
class RunMetadata:
    """Descriptive metadata attached to one measurement run."""

    application: str
    workload: str
    seed: int
    duration: float
    notes: str = ""
    extra: dict = field(default_factory=dict)
