"""Resource accounting for the monitoring pipeline itself.

Table 3 of the paper quantifies what monitoring *costs*: CPU time spent
by the ingest path, database size on disk, and network traffic in and
out of the store.  Our store and collector meter those quantities with
the cost model below, so the Table 3 benchmark can compare the "all
metrics" and "Sieve-reduced metrics" configurations.

The constants are calibrated so that the *relative* savings land in the
regime the paper reports (CPU -81%, storage -94%, network in -79%,
network out -51%); absolute values are in the stated unit but are a
model, not a hardware measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostModel:
    """Unit costs of moving one metric sample through the pipeline.

    The defaults mimic a Telegraf -> InfluxDB deployment:

    * every sample is serialized in line protocol (~60 bytes of metric
      name, tags and value) and shipped to the store (network in);
    * the store parses, indexes and compresses it (CPU), persisting a
      compressed column fragment (storage);
    * dashboards and rule engines periodically query recent samples
      (network out), dominated by a per-series fixed response overhead,
      which is why reported egress savings (~50%) trail ingress savings
      (~80%).
    """

    cpu_seconds_per_sample: float = 4.5e-5
    cpu_seconds_per_series: float = 2.0e-3
    bytes_stored_per_sample: float = 6.5
    index_bytes_per_series: float = 120.0
    wire_bytes_per_sample: float = 62.0
    query_bytes_per_sample: float = 9.0
    query_response_overhead_bytes: float = 256.0
    query_fraction: float = 0.25
    """Fraction of stored samples streamed to rule engines."""

    dashboard_panels: int = 150
    """Dashboards render a bounded number of charts regardless of how
    many series exist; each panel re-reads its window periodically.
    This fixed egress component is why the paper's network-out saving
    (~51%) trails its network-in saving (~79%)."""

    panel_window_samples: int = 700
    """Samples one dashboard panel reads per refresh cycle."""


@dataclass
class ResourceUsage:
    """Accumulated resource consumption of one monitoring configuration."""

    cpu_seconds: float = 0.0
    db_bytes: float = 0.0
    network_in_bytes: float = 0.0
    network_out_bytes: float = 0.0
    samples_written: int = 0
    series_seen: set = field(default_factory=set, repr=False)

    def charge_write(self, key, n_samples: int, model: CostModel) -> None:
        """Meter the ingest of ``n_samples`` samples of series ``key``."""
        if n_samples < 0:
            raise ValueError("cannot write a negative number of samples")
        new_series = key not in self.series_seen
        if new_series:
            self.series_seen.add(key)
            self.cpu_seconds += model.cpu_seconds_per_series
            self.db_bytes += model.index_bytes_per_series
        self.cpu_seconds += n_samples * model.cpu_seconds_per_sample
        self.db_bytes += n_samples * model.bytes_stored_per_sample
        self.network_in_bytes += n_samples * model.wire_bytes_per_sample
        self.samples_written += n_samples

    def charge_query(self, n_samples: int, n_series: int,
                     model: CostModel) -> None:
        """Meter a read of ``n_samples`` samples across ``n_series``."""
        if n_samples < 0 or n_series < 0:
            raise ValueError("negative query size")
        self.cpu_seconds += n_samples * model.cpu_seconds_per_sample * 0.5
        self.network_out_bytes += (
            n_samples * model.query_bytes_per_sample
            + n_series * model.query_response_overhead_bytes
        )

    def summary(self) -> dict[str, float]:
        """Usage totals as a plain dict (for tables and benchmarks)."""
        return {
            "cpu_seconds": self.cpu_seconds,
            "db_bytes": self.db_bytes,
            "network_in_bytes": self.network_in_bytes,
            "network_out_bytes": self.network_out_bytes,
            "samples_written": float(self.samples_written),
            "series": float(len(self.series_seen)),
        }


def reduction_percent(before: float, after: float) -> float:
    """Relative saving ``(before - after) / before`` in percent."""
    if before <= 0:
        raise ValueError("'before' usage must be positive")
    return 100.0 * (before - after) / before
