"""Metered time-series store with InfluxDB-style semantics.

The store accepts point writes tagged with (component, metric), answers
range queries, and meters its own resource consumption through
:mod:`repro.metrics.accounting` so the Table 3 experiment can compare
monitoring configurations.  Replaying a recorded
:class:`~repro.metrics.timeseries.MetricFrame` through a store simulates
"what monitoring would have cost" for an arbitrary metric subset --
exactly how the paper evaluates Sieve's reduction gains.

Where the samples actually live is delegated to a pluggable
:class:`~repro.persistence.backend.StorageBackend`: the default
:class:`~repro.persistence.backend.MemoryBackend` preserves the
original in-RAM behaviour, while
:class:`~repro.persistence.sqlite_backend.SqliteBackend` /
:class:`~repro.persistence.spill.SpillBackend` make the same metered
store durable -- the metering itself is backend-agnostic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.metrics.accounting import CostModel, ResourceUsage
from repro.metrics.timeseries import MetricFrame, MetricKey, TimeSeries

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.persistence.backend import StorageBackend


class MetricsStore:
    """Metered stand-in for InfluxDB over a pluggable backend."""

    def __init__(self, cost_model: CostModel | None = None,
                 backend: "StorageBackend | None" = None):
        self.cost_model = cost_model or CostModel()
        self.usage = ResourceUsage()
        if backend is None:
            # Resolved through the registry (deferred import: the
            # registry factory imports repro.persistence.backend,
            # which itself imports repro.metrics.timeseries, so a
            # module-level import here would close an import cycle).
            from repro.api.registry import BACKENDS

            backend = BACKENDS.create("memory")
        self.backend = backend

    # -- write path ---------------------------------------------------

    def write_point(self, component: str, metric: str,
                    time: float, value: float) -> None:
        """Ingest a single sample."""
        self.backend.write(component, metric, (time,), (value,))
        self.usage.charge_write(MetricKey(component, metric), 1,
                                self.cost_model)

    def write_series(self, ts: TimeSeries) -> None:
        """Ingest a whole series (one vectorized bulk write)."""
        self.backend.write(ts.key.component, ts.key.metric,
                           ts.times, ts.values)
        self.usage.charge_write(ts.key, len(ts), self.cost_model)

    def write_batch(self, component: str, metric: str,
                    times, values) -> None:
        """Ingest a batch of samples for one metric (streaming path)."""
        written = self.backend.write(component, metric, times, values)
        self.usage.charge_write(MetricKey(component, metric),
                                written, self.cost_model)

    def replay_frame(self, frame: MetricFrame,
                     keep: Iterable[MetricKey] | None = None) -> None:
        """Replay a recorded run, optionally restricted to ``keep`` keys.

        With ``keep=None`` every series is written (the "before Sieve"
        configuration); passing the representative-metric keys gives the
        "after Sieve" configuration of Table 3.
        """
        keep_set = None if keep is None else set(keep)
        for ts in frame:
            if keep_set is not None and ts.key not in keep_set:
                continue
            self.write_series(ts)

    # -- read path ----------------------------------------------------

    def query(self, component: str, metric: str,
              start: float = float("-inf"),
              end: float = float("inf")) -> TimeSeries:
        """Range query for one series; empty result for unknown keys."""
        result = self.backend.query(component, metric, start, end)
        self.usage.charge_query(len(result), 1, self.cost_model)
        return result

    def simulate_dashboard_reads(self) -> None:
        """Meter the periodic reads dashboards/rule engines would issue.

        Two egress components, mirroring a Grafana + Kapacitor setup:

        * dashboards render a *bounded* number of panels (if more series
          exist than panels, the extra series are simply never shown),
          each re-reading its recent window;
        * rule engines stream ``query_fraction`` of all stored samples.

        The bounded panel term is why cutting the stored series 10x
        saves less egress than ingress (paper Table 3: -51% vs -79%).
        """
        model = self.cost_model
        n_series = self.backend.series_count()
        panels = min(n_series, model.dashboard_panels)
        self.usage.charge_query(panels * model.panel_window_samples,
                                panels, model)
        streamed = int(self.backend.sample_count() * model.query_fraction)
        self.usage.charge_query(streamed, n_series, model)

    # -- introspection ------------------------------------------------

    @property
    def frame(self) -> MetricFrame:
        """The stored data as a frame.

        With the default :class:`MemoryBackend` this is the live frame
        (do not mutate); durable backends materialize a copy.
        """
        return self.backend.to_frame()

    def series_count(self) -> int:
        """Number of distinct series stored."""
        return self.backend.series_count()

    def sample_count(self) -> int:
        """Total samples stored."""
        return self.backend.sample_count()

    def flush(self) -> None:
        """Make writes durable (no-op for the memory backend)."""
        self.backend.flush()

    def close(self) -> None:
        self.backend.close()
