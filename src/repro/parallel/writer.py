"""Concurrent ingest: a batching writer thread in front of a backend.

Durable backends pay real latency per write (sqlite transactions,
spill-segment serialization).  With the bus wired straight to such a
backend, every flush blocks ingestion for the duration of the write.
:class:`BatchingWriter` decouples the two: ``write`` enqueues the
batch on a bounded queue and returns immediately, while a dedicated
writer thread drains the queue into the wrapped backend in arrival
order.  The bus never blocks on durable writes unless the queue is
full -- at which point blocking *is* the backpressure.

Crash safety composes with the write-ahead ingest journal rather than
duplicating it: every queued batch was journaled by the bus before it
reached this writer, so batches lost in the queue at kill time are
re-derived on restart (``restore_engine`` replays the journal and
heals the backend's missing tail via ``newest_time``).  A crash can
therefore never lose acknowledged data, only un-fsynced work the
journal re-creates -- the torn-write contract the tests pin down.

Reads are *drain-through*: ``query``/``to_frame``/``sample_count``
first wait for the queue to empty, so the writer is read-your-writes
consistent.  ``flush`` drains and then flushes the inner backend --
the checkpoint hook (:class:`~repro.persistence.checkpoint
.CheckpointPolicy` flushes the store's backend before every
checkpoint, bounding the un-durable window to one checkpoint epoch).
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Iterable

from repro.metrics.timeseries import MetricFrame, MetricKey, TimeSeries
from repro.persistence.backend import as_arrays

#: Queue sentinel asking the writer thread to exit.
_STOP = object()


class WriterError(RuntimeError):
    """A backend write failed on the writer thread.

    Raised on the *caller's* next interaction with the writer; the
    original backend exception is chained as ``__cause__``.
    """


@dataclass
class WriterStats:
    """Observability counters of one :class:`BatchingWriter`."""

    batches_enqueued: int = 0
    points_enqueued: int = 0
    batches_written: int = 0
    points_written: int = 0
    drains: int = 0
    max_queue_depth: int = 0

    def as_dict(self) -> dict:
        return {
            "writer_batches_enqueued": self.batches_enqueued,
            "writer_points_enqueued": self.points_enqueued,
            "writer_batches_written": self.batches_written,
            "writer_points_written": self.points_written,
            "writer_drains": self.drains,
            "writer_max_queue_depth": self.max_queue_depth,
        }


class BatchingWriter:
    """Asynchronous, order-preserving front of a storage backend.

    Speaks the full :class:`~repro.persistence.backend.StorageBackend`
    protocol (plus the bus-subscriber ``ingest`` alias), so anything
    that accepts a backend accepts a wrapped one.
    """

    def __init__(self, backend, max_batches: int = 256):
        if max_batches < 1:
            raise ValueError("max_batches must be >= 1")
        self.backend = backend
        self.max_batches = max_batches
        self._stats_lock = threading.Lock()
        """Guards :attr:`stats`: the caller thread (enqueue
        counts), the writer thread (write counts) and telemetry
        scrape threads all touch the same struct."""
        self.stats = WriterStats()  # guarded-by: _stats_lock
        self._write_seconds = None
        self._flush_seconds = None
        self._errors_total = None
        self._queue: queue.Queue = queue.Queue(maxsize=max_batches)
        self._error: BaseException | None = None
        self._closed = False
        self._aborted = False
        self._thread = threading.Thread(
            target=self._writer_loop,
            name="repro-ingest-writer",
            daemon=True,
        )
        self._thread.start()

    def attach_telemetry(self, telemetry) -> None:
        """Instrument this writer against a :class:`repro.obs.Telemetry`.

        Adds durable-write and flush latency histograms, a failure
        counter, and a scrape-time collector over :attr:`stats` plus
        the live queue depth.  Lifetime counters stay sampled (never
        double-booked on the enqueue path).
        """
        registry = telemetry.registry
        self._write_seconds = registry.histogram(
            "repro_writer_write_seconds",
            "Wall time of one durable backend write "
            "(on the writer thread)",
        )
        self._flush_seconds = registry.histogram(
            "repro_writer_flush_seconds",
            "Wall time of drain + backend flush",
        )
        self._errors_total = registry.counter(
            "repro_writer_errors_total",
            "Backend writes that failed on the writer thread",
        )
        writer_total = registry.counter(
            "repro_writer_total", "Lifetime async-writer counts, by event",
            labelnames=("event",),
        )
        depth_gauge = registry.gauge(
            "repro_writer_queue_depth",
            "Batches enqueued but not yet written",
        )
        capacity_gauge = registry.gauge(
            "repro_writer_queue_capacity",
            "Bound of the writer queue (blocking backpressure point)",
        )

        def sample() -> None:
            with self._stats_lock:
                stats = self.stats.as_dict()
            for event, value in stats.items():
                writer_total.set_total(
                    value, event=event.removeprefix("writer_"))
            depth_gauge.set(self.pending_batches)
            capacity_gauge.set(self.max_batches)

        registry.add_collector(sample)

    # -- the writer thread ---------------------------------------------

    def _writer_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                if self._error is not None or self._aborted:
                    continue  # fail-stop: preserve the first error
                component, metric, t, v = item
                try:
                    if self._write_seconds is None:
                        self.backend.write(component, metric, t, v)
                    else:
                        started = time.perf_counter()
                        self.backend.write(component, metric, t, v)
                        self._write_seconds.observe(
                            time.perf_counter() - started)
                    with self._stats_lock:
                        self.stats.batches_written += 1
                        self.stats.points_written += int(t.size)
                except BaseException as exc:
                    self._error = exc
                    if self._errors_total is not None:
                        self._errors_total.inc()
            finally:
                self._queue.task_done()

    def _raise_error(self) -> None:
        if self._error is not None:
            raise WriterError(
                f"backend write failed on the writer thread: {self._error!r}"
            ) from self._error

    def _check(self) -> None:
        self._raise_error()
        if self._closed:
            raise RuntimeError("writer is closed")

    # -- writes (async) ------------------------------------------------

    def write(self, component: str, metric: str, times, values) -> int:
        """Enqueue one batch; blocks only when the queue is full."""
        self._check()
        t, v = as_arrays(times, values)
        if not t.size:
            return 0
        self._queue.put((component, metric, t.copy(), v.copy()))
        depth = self._queue.qsize()
        with self._stats_lock:
            self.stats.batches_enqueued += 1
            self.stats.points_enqueued += int(t.size)
            if depth > self.stats.max_queue_depth:
                self.stats.max_queue_depth = depth
        return int(t.size)

    def ingest(self, component: str, metric: str, times, values) -> None:
        """Ingestion-bus subscriber protocol (delegates to ``write``)."""
        self.write(component, metric, times, values)

    # -- synchronization -----------------------------------------------

    @property
    def pending_batches(self) -> int:
        """Batches enqueued but not yet written."""
        return self._queue.qsize()

    @property
    def queue_capacity(self) -> int:
        """The queue bound (``max_batches``), for health probes."""
        return self.max_batches

    @property
    def failed(self) -> bool:
        """Whether a backend write has failed (fail-stop state)."""
        return self._error is not None

    @property
    def error(self) -> BaseException | None:
        """The captured backend exception, or None while healthy."""
        return self._error

    def drain(self) -> None:
        """Block until every enqueued batch reached the backend."""
        self._queue.join()
        with self._stats_lock:
            self.stats.drains += 1
        self._check()

    def flush(self) -> None:
        """Drain the queue, then make the inner backend durable."""
        if self._flush_seconds is None:
            self.drain()
            self.backend.flush()
            return
        started = time.perf_counter()
        self.drain()
        self.backend.flush()
        self._flush_seconds.observe(time.perf_counter() - started)

    # -- reads (drain-through: read-your-writes) -----------------------

    def query(
        self,
        component: str,
        metric: str,
        start: float = float("-inf"),
        end: float = float("inf"),
    ) -> TimeSeries:
        self.drain()
        return self.backend.query(component, metric, start, end)

    def query_rollup(
        self,
        component: str,
        metric: str,
        start: float = float("-inf"),
        end: float = float("inf"),
    ):
        self.drain()
        return self.backend.query_rollup(component, metric, start, end)

    def keys(self) -> list[MetricKey]:
        self.drain()
        return self.backend.keys()

    def series_count(self) -> int:
        self.drain()
        return self.backend.series_count()

    def sample_count(self) -> int:
        self.drain()
        return self.backend.sample_count()

    def newest_time(self, component: str, metric: str) -> float | None:
        self.drain()
        return self.backend.newest_time(component, metric)

    def to_frame(self, keep: Iterable[MetricKey] | None = None) -> MetricFrame:
        self.drain()
        return self.backend.to_frame(keep)

    def set_metadata(self, meta: dict) -> None:
        self.drain()
        self.backend.set_metadata(meta)

    def metadata(self) -> dict:
        self.drain()
        return self.backend.metadata()

    def compact(self, retention: float | None = None) -> dict:
        """Drain, then compact the inner backend (order-preserving:
        nothing queued can be older than what compaction drops)."""
        self.drain()
        return self.backend.compact(retention=retention)

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Drain, stop the thread and close the inner backend."""
        if self._closed:
            return
        self._queue.join()
        self._closed = True
        self._queue.put(_STOP)
        self._thread.join()
        self.backend.close()
        self._raise_error()

    def abort(self) -> None:
        """Simulate a crash: discard queued batches, write nothing more.

        The inner backend is left exactly as the last completed write
        left it -- not flushed, not closed -- which is what a killed
        process leaves on disk.  Used by the crash-safety tests; the
        journal replay path is what recovers the discarded batches.
        """
        if self._closed:
            return
        self._aborted = True
        self._closed = True
        self._queue.put(_STOP)
        self._thread.join()

    def __enter__(self) -> "BatchingWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
