"""Shard executors: where per-component analysis work actually runs.

Sieve's windowed analysis is embarrassingly parallel across components:
every component's re-reduce/re-cluster (and every drift shape check) is
a pure function of that component's own samples and the run seed.  A
:class:`ShardExecutor` pins down the *distribution policy* for that
fan-out -- inline, a thread pool, a process pool, or a process pool
with shared-memory array transport (:mod:`repro.parallel.shm`) --
while the analysis pipeline stays oblivious to which one is plugged
in (the RAFDA separation of application logic from distribution
policy).

The contract every strategy honours:

* ``map(fn, payloads)`` returns results **in payload order**, so the
  caller's merge is deterministic regardless of completion order;
* ``fn`` and every payload/result must be picklable for the process
  strategy (module-level task functions, plain-data payloads);
* per-payload work is independent -- executors never share state
  between tasks.

Because results are merged in submission order and every task is a
pure seeded function, ``serial``, ``thread``, ``process`` and ``shm``
produce bit-identical analyses (asserted by the determinism tests).
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Sequence

#: Valid executor strategy names, in escalation order.
EXECUTOR_KINDS = ("serial", "thread", "process", "shm")

#: Below this many payloads a pooled executor runs inline -- the fixed
#: dispatch cost (pickling, wakeups) dwarfs any overlap win.
MIN_PARALLEL_PAYLOADS = 2


def default_workers() -> int:
    """Worker count when the caller does not pin one (all cores)."""
    return max(os.cpu_count() or 1, 1)


class ShardExecutor:
    """Base strategy: run shard tasks inline, in submission order.

    Also the ``serial`` strategy itself -- and the documented fallback
    that :func:`make_executor` returns for any pool sized at one
    worker, where a pool only adds dispatch overhead.
    """

    kind = "serial"

    def __init__(self, workers: int = 1):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.tasks_dispatched = 0
        """Payloads handed to :meth:`map` over this executor's lifetime."""

    def map(
        self,
        fn: Callable[[Any], Any],
        payloads: Iterable[Any],
    ) -> list[Any]:
        """Apply ``fn`` to every payload; results in payload order."""
        items = payloads if isinstance(payloads, Sequence) else list(payloads)
        self.tasks_dispatched += len(items)
        return self._run(fn, items)

    def _run(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        return [fn(item) for item in items]

    def close(self) -> None:
        """Release pooled workers (inline strategies: no-op)."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def describe(self) -> dict:
        """Executor identity for summaries and benchmark records."""
        return {
            "executor": self.kind,
            "executor_workers": self.workers,
            "tasks_dispatched": self.tasks_dispatched,
        }


class _PooledExecutor(ShardExecutor):
    """Shared plumbing of the thread/process strategies.

    The pool is created lazily on first use and reused across windows
    (worker warm-up is paid once per engine, not once per window).
    Batches smaller than :data:`MIN_PARALLEL_PAYLOADS` run inline.
    """

    #: Extra keyword arguments for the pool's ``map`` call.
    _map_kwargs: dict = {}

    def __init__(self, workers: int | None = None):
        super().__init__(workers or default_workers())
        self._pool: Executor | None = None

    def _make_pool(self) -> Executor:
        raise NotImplementedError

    def _run(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        if len(items) < MIN_PARALLEL_PAYLOADS:
            return [fn(item) for item in items]
        if self._pool is None:
            self._pool = self._make_pool()
        return list(self._pool.map(fn, items, **self._map_kwargs))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ThreadShardExecutor(_PooledExecutor):
    """Shards on a thread pool.

    Numpy kernels release the GIL only partially, so threads mostly pay
    off when the per-shard work blocks (backend reads, I/O-bound
    tasks); for pure re-clustering CPU work prefer ``process``.
    """

    kind = "thread"

    def _make_pool(self) -> Executor:
        return ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-shard",
        )


class ProcessShardExecutor(_PooledExecutor):
    """Shards on a process pool -- true parallelism for CPU-bound work.

    Task functions must be module-level and payloads picklable.  Work
    is dispatched with ``chunksize=1`` so components spread across
    workers even when their costs are skewed (the per-window critical
    path is the largest component).
    """

    kind = "process"

    # chunksize=1 spreads skewed per-component costs across workers.
    _map_kwargs = {"chunksize": 1}

    def _make_pool(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.workers)


def make_executor(
    kind: str = "serial",
    workers: int | None = None,
) -> ShardExecutor:
    """Build the executor for a registered strategy name.

    ``kind`` resolves through the plugin registry
    (:data:`repro.api.registry.EXECUTORS`), so strategies registered
    via :func:`repro.api.register_executor` work exactly like the
    builtins.  ``workers=None`` (or 0) sizes pools to
    :func:`default_workers`.  A builtin pooled strategy pinned to a
    single worker falls back to the serial executor: one worker cannot
    overlap anything, so the pool would only add dispatch and pickling
    overhead (the "pool-size-1 fallback" the tests pin down).
    """
    # Local import: the registry module is a leaf, but repro.api must
    # not be a hard import at executor load time.
    from repro.api.registry import EXECUTORS

    sized = workers if workers else None
    if sized is not None and sized < 1:
        raise ValueError("workers must be >= 1")
    return EXECUTORS.create(kind, sized)
