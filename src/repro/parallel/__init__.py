"""Parallel sharded analysis: executors and the concurrent-ingest writer.

The streaming pipeline is agnostic to *where* its shards run (RAFDA's
separation of application logic from distribution policy):

* :mod:`repro.parallel.executor` -- :class:`ShardExecutor` strategies
  (``serial`` / ``thread`` / ``process``) that fan per-component
  window work (re-reduce + re-cluster, drift shape checks) out to
  workers and merge results deterministically;
* :mod:`repro.parallel.shm` -- the ``shm`` strategy: the process
  fan-out with window arrays shipped as shared-memory descriptors
  instead of pickles (:class:`ShmShardExecutor` + its
  :class:`SegmentPool`);
* :mod:`repro.parallel.writer` -- :class:`BatchingWriter`, a bounded
  writer thread in front of a durable storage backend, so the
  ingestion bus never blocks on durable writes.

Pick a strategy via :attr:`repro.core.config.StreamingConfig.executor`
(or ``--executor`` on the CLI); ``serial == thread == process == shm``
on the same seed is a tested invariant.
"""

from repro.parallel.executor import (
    EXECUTOR_KINDS,
    ProcessShardExecutor,
    ShardExecutor,
    ThreadShardExecutor,
    default_workers,
    make_executor,
)
from repro.parallel.shm import SegmentPool, ShmShardExecutor
from repro.parallel.writer import BatchingWriter, WriterError, WriterStats

__all__ = [
    "EXECUTOR_KINDS",
    "BatchingWriter",
    "ProcessShardExecutor",
    "SegmentPool",
    "ShardExecutor",
    "ShmShardExecutor",
    "ThreadShardExecutor",
    "WriterError",
    "WriterStats",
    "default_workers",
    "make_executor",
]
