"""Zero-copy shared-memory transport for shard executors.

The ``process`` strategy pays for its parallelism in pickling: every
window, each component's entire sample view is serialized onto a pipe,
copied into the worker, and deserialized -- for payloads that are
almost entirely large float64 arrays the transport dominates the win.
This module moves those arrays onto ``multiprocessing.shared_memory``
segments instead, so a task payload ships as a tuple of tiny
:class:`ArrayRef` descriptors ``(segment, shape, dtype, offset,
epoch)`` and workers rebuild the series as numpy views straight into
the shared pages -- zero copies on either side of the hop.

Three cooperating pieces:

* :class:`SegmentPool` (parent side) -- owns the named segments.  Ring
  buffers get permanent bump-allocated slab space
  (:meth:`SegmentPool.alloc_ring`); arrays that do not already live in
  shared memory (backend-served windows, stale references) are staged
  per epoch (:meth:`SegmentPool.stage`).  Every segment starts with a
  16-byte header (magic + epoch stamp) that workers validate before
  trusting a view.
* :class:`ShmShardExecutor` -- a process-pool strategy whose ``map``
  *packs* payloads (rewriting :class:`TimeSeries` into series
  descriptors) and fans out :func:`_shm_task`, which unpacks them into
  read-only views via :meth:`TimeSeries.wrap`.
* the **epoch protocol** -- ring memory only stays coherent for the
  duration of one synchronous window analysis.
  :meth:`~repro.streaming.window.WindowStore.snapshot` calls
  :meth:`SegmentPool.begin_epoch`; references minted for that snapshot
  carry the epoch; packing any series whose reference epoch went stale
  falls back to staging its (stable, private) arrays, and workers
  refuse views whose segment header disagrees -- a torn read becomes a
  loud error instead of silent corruption.

Lifecycle: the parent registers every segment with the
``multiprocessing`` resource tracker (so a crashed parent still gets
``/dev/shm`` cleaned), workers are forked where the platform allows it
(one shared tracker -- attaching in a worker cannot early-unlink a
segment the parent still uses), and :meth:`SegmentPool.close` detaches
and unlinks everything it ever created.  ``StreamingSieve.close()``
detaches the rings *before* closing the executor, so no live numpy
view blocks the unmap.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable, NamedTuple, Sequence

import numpy as np

from repro.metrics.timeseries import MetricKey, TimeSeries
from repro.parallel.executor import (
    MIN_PARALLEL_PAYLOADS,
    ProcessShardExecutor,
)

__all__ = [
    "ArrayRef",
    "SegmentPool",
    "ShmShardExecutor",
    "ShmTimeSeries",
]

#: Segment header layout: ``uint64 magic, uint64 epoch`` (16 bytes).
_MAGIC = 0x5245_5052_4F53_484D  # "REPROSHM"
_HEADER_BYTES = 16

#: Allocation alignment inside a segment (float64-friendly).
_ALIGN = 16

#: Default slab segment size; rings bump-allocate inside slabs so a
#: store with hundreds of series does not open hundreds of segments.
_SLAB_BYTES = 1 << 20

#: Whether workers share the parent's resource tracker (fork start
#: method).  Without fork every process runs its *own* tracker, and an
#: attach in a worker would unlink the segment when the worker exits
#: (bpo-39959) -- those platforms must unregister worker-side.
_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


@dataclass(frozen=True)
class ArrayRef:
    """Descriptor of one float64 array inside a shared segment.

    Small and picklable -- this is what crosses the process boundary
    instead of the array itself.
    """

    segment: str
    shape: tuple
    dtype: str
    offset: int
    epoch: int

    @property
    def nbytes(self) -> int:
        n = 1
        for dim in self.shape:
            n *= int(dim)
        return n * np.dtype(self.dtype).itemsize


class RingLoc(NamedTuple):
    """Where one ring's buffers live: segment + per-buffer offsets."""

    segment: str
    times_offset: int
    values_offset: int


class ShmTimeSeries(TimeSeries):
    """A window series annotated with shared-memory references.

    The samples themselves are a *private copy* (exactly what the
    plain ring window returns), so everything that retains the series
    past the window -- history, RCA diffs, drift rebase -- stays
    correct as the ring advances.  The annotations point at the ring
    memory the copy was taken from; they are only honoured while their
    epoch is current (one synchronous analysis), after which packing
    falls back to staging the private arrays.
    """

    __slots__ = ("times_ref", "values_ref")

    @classmethod
    def annotate(cls, ts: TimeSeries, times_ref: ArrayRef,
                 values_ref: ArrayRef) -> "ShmTimeSeries":
        """Adopt ``ts``'s buffers (no copy) and attach the references."""
        out = cls.wrap(ts.key, ts.times_view, ts.values_view)
        out.times_ref = times_ref
        out.values_ref = values_ref
        return out


class _Segment:
    """Parent-side record of one owned shared-memory segment."""

    __slots__ = ("shm", "kind", "refs", "cursor", "header")

    def __init__(self, shm: shared_memory.SharedMemory, kind: str,
                 epoch: int):
        self.shm = shm
        self.kind = kind
        self.refs = 0
        """Live ring allocations carved from this segment."""
        self.cursor = _HEADER_BYTES
        self.header = np.ndarray((2,), dtype=np.uint64, buffer=shm.buf)
        self.header[0] = _MAGIC
        self.header[1] = epoch

    @property
    def capacity(self) -> int:
        return self.shm.size

    def room(self) -> int:
        return self.capacity - self.cursor

    def take(self, nbytes: int) -> int:
        """Bump-allocate ``nbytes``; returns the byte offset."""
        offset = self.cursor
        self.cursor = _aligned(offset + nbytes)
        return offset


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


class SegmentPool:
    """Owns the shared segments of one executor (parent side).

    Two allocation disciplines share the same segment format:

    * **ring slabs** -- permanent; :meth:`alloc_ring` carves
      fixed-capacity buffer pairs out of slab segments and refcounts
      the carve-outs (:meth:`release_ring`), so rings never move and
      window references stay valid for a ring's whole life;
    * **staging** -- per-epoch scratch; :meth:`begin_epoch` resets the
      staging cursor (keeping only the largest staging segment, so a
      one-off huge window does not pin its high-water mark forever).
    """

    def __init__(self, slab_bytes: int = _SLAB_BYTES):
        if slab_bytes < 4 * _HEADER_BYTES:
            raise ValueError("slab_bytes is too small to hold a header")
        self.slab_bytes = slab_bytes
        self.epoch = 0
        self.auto_epoch = True
        """Whether :class:`ShmShardExecutor` begins an epoch per
        ``map`` (standalone use).  A :class:`WindowStore` that drives
        epochs from ``snapshot`` turns this off."""

        self.closed = False
        self._segments: dict[str, _Segment] = {}
        self._ring_slab: _Segment | None = None
        self._staging: list[_Segment] = []
        self._counter = 0
        self._prefix = f"repro-{os.getpid()}-{os.urandom(4).hex()}"
        self.staged_bytes = 0
        """Bytes copied through staging over the pool's lifetime (the
        part of the transport that is *not* zero-copy)."""

    # -- segment management --------------------------------------------

    def _new_segment(self, size: int, kind: str) -> _Segment:
        if self.closed:
            raise RuntimeError("segment pool is closed")
        name = f"{self._prefix}-{self._counter}"
        self._counter += 1
        shm = shared_memory.SharedMemory(name=name, create=True,
                                         size=max(size, _HEADER_BYTES))
        segment = _Segment(shm, kind, self.epoch)
        self._segments[shm.name] = segment
        return segment

    def _release_segment(self, segment: _Segment) -> None:
        self._segments.pop(segment.shm.name, None)
        segment.header = None  # type: ignore[assignment]
        try:
            segment.shm.close()
        except BufferError:  # pragma: no cover - exported views linger
            pass
        try:
            segment.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def segment_count(self) -> int:
        return len(self._segments)

    def total_bytes(self) -> int:
        return sum(seg.capacity for seg in self._segments.values())

    def stats(self) -> dict:
        """Pool shape for telemetry and executor descriptions."""
        return {
            "shm_segments": self.segment_count(),
            "shm_bytes": self.total_bytes(),
            "shm_epoch": self.epoch,
            "shm_staged_bytes": self.staged_bytes,
        }

    # -- ring allocations ----------------------------------------------

    def alloc_ring(self, capacity: int,
                   ) -> tuple[np.ndarray, np.ndarray, RingLoc]:
        """Carve one fixed-capacity (times, values) buffer pair.

        Returns the two float64 arrays (views into the slab) plus the
        :class:`RingLoc` later window references are derived from.
        The allocation is permanent: slab space is never recycled, so
        ring buffers never move and descriptors never dangle.
        """
        nbytes = 8 * capacity
        need = _aligned(nbytes) + _aligned(nbytes)
        slab = self._ring_slab
        if slab is None or slab.room() < need:
            slab = self._new_segment(
                max(self.slab_bytes, need + _HEADER_BYTES), "ring")
            self._ring_slab = slab
        times_offset = slab.take(nbytes)
        values_offset = slab.take(nbytes)
        slab.refs += 1
        times = np.ndarray((capacity,), dtype=np.float64,
                           buffer=slab.shm.buf, offset=times_offset)
        values = np.ndarray((capacity,), dtype=np.float64,
                            buffer=slab.shm.buf, offset=values_offset)
        return times, values, RingLoc(slab.shm.name, times_offset,
                                      values_offset)

    def release_ring(self, loc: RingLoc) -> None:
        """Drop one ring carve-out's refcount (ring detached)."""
        segment = self._segments.get(loc.segment)
        if segment is not None and segment.refs > 0:
            segment.refs -= 1

    def ring_window_refs(self, loc: RingLoc, lo: int,
                         hi: int) -> tuple[ArrayRef, ArrayRef]:
        """References to one ``[lo, hi)`` slice of a ring's buffers."""
        n = hi - lo
        return (
            ArrayRef(loc.segment, (n,), "float64",
                     loc.times_offset + 8 * lo, self.epoch),
            ArrayRef(loc.segment, (n,), "float64",
                     loc.values_offset + 8 * lo, self.epoch),
        )

    # -- the epoch protocol --------------------------------------------

    def begin_epoch(self) -> int:
        """Open a new coherence window; invalidates older references.

        Resets staging (keeping the largest staging segment as the
        steady-state scratch) and stamps every segment header with the
        new epoch, so workers can detect a stale descriptor at the
        moment they would have read torn data.
        """
        self.epoch += 1
        if len(self._staging) > 1:
            keep = max(self._staging, key=lambda seg: seg.capacity)
            for segment in self._staging:
                if segment is not keep:
                    self._release_segment(segment)
            self._staging = [keep]
        for segment in self._staging:
            segment.cursor = _HEADER_BYTES
        for segment in self._segments.values():
            segment.header[1] = self.epoch
        return self.epoch

    def stage(self, array: np.ndarray) -> ArrayRef:
        """Copy one array into the current epoch's staging space.

        The fallback path for arrays that do not already live in a
        segment (backend-served windows, stale ring references,
        standalone executor use) -- one memcpy, against the two-plus
        copies and object walk of pickling.
        """
        data = np.ascontiguousarray(np.asarray(array, dtype=np.float64))
        nbytes = data.nbytes
        segment = None
        for candidate in self._staging:
            if candidate.room() >= nbytes:
                segment = candidate
                break
        if segment is None:
            segment = self._new_segment(
                max(self.slab_bytes, nbytes + _HEADER_BYTES), "staging")
            self._staging.append(segment)
        offset = segment.take(nbytes)
        target = np.ndarray(data.shape, dtype=np.float64,
                            buffer=segment.shm.buf, offset=offset)
        target[...] = data
        self.staged_bytes += nbytes
        return ArrayRef(segment.shm.name, tuple(data.shape), "float64",
                        offset, self.epoch)

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Detach and unlink every owned segment (idempotent).

        Callers must drop their numpy views first (rings detach via
        :meth:`~repro.streaming.window.WindowStore.detach_shm`); a
        lingering exported view only leaks the mapping of this
        process, never the ``/dev/shm`` name.
        """
        if self.closed:
            return
        self.closed = True
        for segment in list(self._segments.values()):
            self._release_segment(segment)
        self._segments.clear()
        self._staging = []
        self._ring_slab = None


# -- worker side -----------------------------------------------------------

#: Per-worker attach cache: segment name -> open handle, LRU-bounded.
_ATTACH_CACHE: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()
_ATTACH_CACHE_MAX = 64


def _attach(name: str) -> shared_memory.SharedMemory:
    handle = _ATTACH_CACHE.get(name)
    if handle is not None:
        _ATTACH_CACHE.move_to_end(name)
        return handle
    handle = shared_memory.SharedMemory(name=name)
    if not _HAS_FORK:  # pragma: no cover - non-fork platforms only
        # Spawned workers run their own resource tracker; leaving the
        # attach registered would unlink the segment -- which the
        # parent still uses -- when this worker exits (bpo-39959).
        # Forked workers share the parent's tracker, where the attach
        # registration is an idempotent no-op and must stay (it is the
        # parent's own crash-cleanup registration).
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(handle._name,  # type: ignore
                                        "shared_memory")
        except Exception:
            pass
    _ATTACH_CACHE[name] = handle
    return handle


def _evict_attachments() -> None:
    """Shrink the attach cache to its bound (between tasks only).

    Called at task start, when no views from a previous task can be
    alive (results were pickled back), so closing old handles is safe.
    """
    while len(_ATTACH_CACHE) > _ATTACH_CACHE_MAX:
        name, handle = _ATTACH_CACHE.popitem(last=False)
        try:
            handle.close()
        except BufferError:  # pragma: no cover - defensive
            _ATTACH_CACHE[name] = handle
            _ATTACH_CACHE.move_to_end(name, last=False)
            break


def resolve_ref(ref: ArrayRef) -> np.ndarray:
    """Materialize a descriptor as a read-only view into its segment.

    Validates the segment header before returning: wrong magic means
    the descriptor points at something that is not ours; a stale epoch
    means the coherence window the descriptor was minted for has
    closed and the memory may since have been rewritten.
    """
    handle = _attach(ref.segment)
    header = np.ndarray((2,), dtype=np.uint64, buffer=handle.buf)
    if int(header[0]) != _MAGIC:
        raise RuntimeError(
            f"segment {ref.segment!r} has no repro shm header")
    if int(header[1]) != ref.epoch:
        raise RuntimeError(
            f"stale shm reference into {ref.segment!r}: "
            f"epoch {ref.epoch} vs segment epoch {int(header[1])}"
        )
    view = np.ndarray(ref.shape, dtype=ref.dtype, buffer=handle.buf,
                      offset=ref.offset)
    view.flags.writeable = False
    return view


# -- payload packing --------------------------------------------------------


class _SeriesRef(NamedTuple):
    """Pack-time stand-in for one TimeSeries inside a payload."""

    key: MetricKey
    times: ArrayRef
    values: ArrayRef


def _pack(obj: Any, pool: SegmentPool) -> Any:
    """Rewrite every TimeSeries in a payload into descriptors.

    Series already annotated with *current-epoch* references ship as
    those references (zero-copy); everything else -- plain series,
    stale annotations -- is staged.  Containers are rebuilt
    recursively; all other values pass through to pickle untouched.
    """
    if isinstance(obj, TimeSeries):
        if isinstance(obj, ShmTimeSeries) \
                and obj.times_ref.epoch == pool.epoch:
            return _SeriesRef(obj.key, obj.times_ref, obj.values_ref)
        return _SeriesRef(obj.key, pool.stage(obj.times_view),
                          pool.stage(obj.values_view))
    if isinstance(obj, dict):
        return {key: _pack(value, pool) for key, value in obj.items()}
    if isinstance(obj, tuple):
        return tuple(_pack(value, pool) for value in obj)
    if isinstance(obj, list):
        return [_pack(value, pool) for value in obj]
    return obj


def _unpack(obj: Any) -> Any:
    """Worker-side inverse of :func:`_pack` (views, not copies)."""
    if isinstance(obj, _SeriesRef):
        return TimeSeries.wrap(obj.key, resolve_ref(obj.times),
                               resolve_ref(obj.values))
    if isinstance(obj, dict):
        return {key: _unpack(value) for key, value in obj.items()}
    if isinstance(obj, tuple) and not isinstance(obj, _SeriesRef):
        return tuple(_unpack(value) for value in obj)
    if isinstance(obj, list):
        return [_unpack(value) for value in obj]
    return obj


def _shm_task(item: tuple[Callable[[Any], Any], Any]) -> Any:
    """The module-level task wrapper workers actually run."""
    fn, payload = item
    _evict_attachments()
    return fn(_unpack(payload))


# -- the executor -----------------------------------------------------------


class ShmShardExecutor(ProcessShardExecutor):
    """Process shards with shared-memory array transport.

    Identical distribution policy to ``process`` (order-preserving
    map, ``chunksize=1``), but payload arrays cross the boundary as
    :class:`ArrayRef` descriptors instead of pickles.  The analysis
    tasks are unchanged pure functions of their payloads, so results
    merge identically to every other strategy.
    """

    kind = "shm"

    def __init__(self, workers: int | None = None):
        super().__init__(workers)
        self.segments = SegmentPool()

    def _make_pool(self) -> Executor:
        if _HAS_FORK:
            # Fork keeps one shared resource tracker (see _attach) and
            # inherits already-mapped segments for free.
            context = multiprocessing.get_context("fork")
            return ProcessPoolExecutor(max_workers=self.workers,
                                       mp_context=context)
        return ProcessPoolExecutor(  # pragma: no cover - non-fork
            max_workers=self.workers)

    def _run(self, fn: Callable[[Any], Any],
             items: Sequence[Any]) -> list[Any]:
        if len(items) < MIN_PARALLEL_PAYLOADS:
            return [fn(item) for item in items]
        if self._pool is None:
            self._pool = self._make_pool()
        if self.segments.auto_epoch:
            # Standalone use: nobody snapshots, so each map is its own
            # coherence window (resets staging scratch too).
            self.segments.begin_epoch()
        packed = [(fn, _pack(item, self.segments)) for item in items]
        try:
            return list(self._pool.map(_shm_task, packed,
                                       **self._map_kwargs))
        except BrokenProcessPool:
            # A worker died mid-map.  Drop the broken pool so a later
            # map starts fresh; segment cleanup stays with close().
            self._pool.shutdown(wait=False)
            self._pool = None
            raise

    def close(self) -> None:
        super().close()
        self.segments.close()

    def describe(self) -> dict:
        out = super().describe()
        out.update(self.segments.stats())
        return out
